#include "experiments/parallel.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "common/error.h"

namespace vsplice::experiments {

int resolve_jobs(int jobs) {
  require(jobs >= 0, "--jobs must be >= 0 (0 = one per hardware thread)");
  if (jobs != 0) return jobs;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ParallelRunner::ParallelRunner(int jobs) : jobs_{resolve_jobs(jobs)} {}

void ParallelRunner::run(std::size_t count,
                         const std::function<void(std::size_t)>& task) {
  require(static_cast<bool>(task), "ParallelRunner needs a task");
  if (count == 0) return;

  if (jobs_ <= 1 || count == 1) {
    for (std::size_t i = 0; i < count; ++i) task(i);
    return;
  }

  const std::size_t workers =
      std::min<std::size_t>(static_cast<std::size_t>(jobs_), count);
  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  const auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        task(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock{error_mutex};
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) threads.emplace_back(worker);
  for (std::thread& t : threads) t.join();

  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace vsplice::experiments
