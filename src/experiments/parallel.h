// Thread-pool fan-out for independent simulation runs.
//
// Every scenario run owns its Simulator, Network, and swarm — nothing is
// shared between runs except read-only configs — so a sweep's grid cells
// and a repetition's seeds are embarrassingly parallel. ParallelRunner
// executes `count` indexed tasks on up to `jobs` worker threads; callers
// pre-build one config per index and write each result into its own
// pre-sized slot, so the assembled output is in submission order and
// byte-identical to what the serial loop produces (see DESIGN.md §9).
//
// Threading model: workers claim indices from an atomic counter (no
// per-task queue, no locks on the hot path). The per-run observability
// context (obs bus/metrics, log sink) is thread_local, so each worker's
// runs trace into their own files without synchronization. The first
// exception thrown by any task is captured and rethrown from run() after
// all workers have drained; remaining tasks still execute (their slots
// stay valid), matching the all-or-nothing semantics tests expect.
#pragma once

#include <cstddef>
#include <functional>

namespace vsplice::experiments {

/// Maps the user-facing --jobs value to a worker count: 0 = one per
/// hardware thread (at least 1); negatives are rejected.
[[nodiscard]] int resolve_jobs(int jobs);

class ParallelRunner {
 public:
  /// `jobs` as passed on the command line (0 = auto). jobs <= 1 runs
  /// every task inline on the calling thread, in index order — the
  /// serial reference path.
  explicit ParallelRunner(int jobs);

  [[nodiscard]] int jobs() const { return jobs_; }

  /// Runs task(0) .. task(count-1), each exactly once. Parallel when
  /// jobs > 1 (never more than `count` threads). Blocks until every
  /// task finished; rethrows the first exception any task threw.
  void run(std::size_t count, const std::function<void(std::size_t)>& task);

 private:
  int jobs_;
};

}  // namespace vsplice::experiments
