// Bandwidth-sweep harness shared by the figure benchmarks: runs a grid of
// (bandwidth x series) scenarios and renders paper-style tables.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/table.h"
#include "common/units.h"
#include "experiments/paper_setup.h"

namespace vsplice::experiments {

struct SweepSeries {
  /// Column label, e.g. "GOP based" or "2 sec".
  std::string label;
  /// Mutates the base config for this series (sets splicer/policy/...).
  std::function<void(ScenarioConfig&)> apply;
};

struct SweepCell {
  RepeatedResult result;
};

struct SweepResult {
  std::vector<Rate> bandwidths;
  std::vector<std::string> series_labels;
  /// cells[bandwidth_index][series_index]
  std::vector<std::vector<SweepCell>> cells;

  /// Renders one metric as a table: rows = bandwidths, columns = series.
  [[nodiscard]] Table table(
      const std::function<double(const RepeatedResult&)>& metric,
      int decimals = 0) const;

  [[nodiscard]] const RepeatedResult& at(std::size_t bandwidth_index,
                                         std::size_t series_index) const;
};

/// Runs the grid. `base` supplies everything the series do not override;
/// each cell repeats `repetitions` seeds per the paper. `jobs` > 1 fans
/// every (cell, repetition) run across that many threads (0 = one per
/// hardware thread). Runs are independent simulations assembled in grid
/// order, so the tables and every per-cell output file are byte-identical
/// to the jobs=1 sweep.
[[nodiscard]] SweepResult run_sweep(const ScenarioConfig& base,
                                    const std::vector<Rate>& bandwidths,
                                    const std::vector<SweepSeries>& series,
                                    int repetitions = 3, int jobs = 1);

/// Label helper: "128 kB/s".
[[nodiscard]] std::string bandwidth_label(Rate bandwidth);

}  // namespace vsplice::experiments
