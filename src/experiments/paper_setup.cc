#include "experiments/paper_setup.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>

#include "common/error.h"
#include "common/log.h"
#include "common/stats.h"
#include "core/pool_policy.h"
#include "experiments/content_cache.h"
#include "experiments/parallel.h"
#include "net/network.h"
#include "obs/exporters.h"
#include "obs/report.h"
#include "obs/sampler.h"
#include "obs/timeseries.h"
#include "p2p/churn.h"
#include "p2p/swarm.h"
#include "sim/simulator.h"

namespace vsplice::experiments {

namespace {
/// The configured trace path, or the VSPLICE_TRACE fallback.
std::string resolve_trace_path(const std::string& configured) {
  if (!configured.empty()) return configured;
  const char* env = std::getenv("VSPLICE_TRACE");
  return env != nullptr ? std::string{env} : std::string{};
}

/// True when VSPLICE_PROFILE is set to anything but "" or "0".
bool profile_env_enabled() {
  const char* env = std::getenv("VSPLICE_PROFILE");
  return env != nullptr && env[0] != '\0' &&
         !(env[0] == '0' && env[1] == '\0');
}

/// Same convention for VSPLICE_SPANS.
bool spans_env_enabled() {
  const char* env = std::getenv("VSPLICE_SPANS");
  return env != nullptr && env[0] != '\0' &&
         !(env[0] == '0' && env[1] == '\0');
}

/// Same convention for VSPLICE_FULL_REALLOC (the full-rescan
/// reallocation oracle, DESIGN.md §16).
bool full_realloc_env_enabled() {
  const char* env = std::getenv("VSPLICE_FULL_REALLOC");
  return env != nullptr && env[0] != '\0' &&
         !(env[0] == '0' && env[1] == '\0');
}

/// VSPLICE_LOOP_THREADS, or 1 when absent/empty/unparseable.
int loop_threads_env() {
  const char* env = std::getenv("VSPLICE_LOOP_THREADS");
  if (env == nullptr || env[0] == '\0') return 1;
  const int n = std::atoi(env);
  return n >= 1 ? n : 1;
}

/// "fig2.html" + run 2 -> "fig2.run2.html" (keeps the extension so the
/// per-seed reports still open in a browser; traces, which have no
/// meaningful extension, keep their append-suffix scheme).
std::string with_run_suffix(const std::string& path, int run) {
  const std::size_t slash = path.find_last_of('/');
  const std::size_t dot = path.find_last_of('.');
  const std::string suffix = ".run" + std::to_string(run);
  if (dot == std::string::npos ||
      (slash != std::string::npos && dot < slash)) {
    return path + suffix;
  }
  return path.substr(0, dot) + suffix + path.substr(dot);
}

/// The report's run-parameter list, sorted by key for deterministic
/// snapshots.
std::vector<std::pair<std::string, std::string>> report_params(
    const ScenarioConfig& config, Duration sample_interval) {
  const auto fmt = [](const char* f, double v) {
    char buf[48];
    std::snprintf(buf, sizeof buf, f, v);
    return std::string{buf};
  };
  std::vector<std::pair<std::string, std::string>> params;
  params.emplace_back("bandwidth",
                      fmt("%.0f kB/s", config.bandwidth.kilobytes_per_second()));
  params.emplace_back("churn", config.churn ? "on" : "off");
  params.emplace_back("control_epoch_s",
                      fmt("%g", config.control_epoch.as_seconds()));
  params.emplace_back("join_spread_s",
                      fmt("%g", config.join_spread.as_seconds()));
  params.emplace_back("nodes", std::to_string(config.nodes));
  params.emplace_back("pair_loss", fmt("%g", config.pair_loss));
  params.emplace_back("policy", config.policy);
  params.emplace_back("sample_interval_s",
                      fmt("%g", sample_interval.as_seconds()));
  params.emplace_back("seed", std::to_string(config.seed));
  params.emplace_back("splicer", config.splicer);
  params.emplace_back("time_limit_s",
                      fmt("%g", config.time_limit.as_seconds()));
  params.emplace_back("upload_slots", std::to_string(config.upload_slots));
  return params;
}
}  // namespace

ScenarioResult run_scenario(const ScenarioConfig& config) {
  require(config.nodes >= 2, "need at least a seeder and one viewer");
  require(config.pair_loss >= 0.0 && config.pair_loss < 1.0,
          "pair loss must be in [0, 1)");

  // --- Simulator first, then observability, so a cache-miss content
  // build below happens with the profiler already installed (the fetch
  // touches no simulator or RNG state, so the order is free).
  sim::Simulator sim;
  sim.set_loop_threads(config.loop_threads > 0 ? config.loop_threads
                                               : loop_threads_env());

  // Observability: installed for the scope of this run when any output
  // was requested. Nests under any context the caller pre-installed
  // (tests drive their own Observability; then none is created here
  // and the caller's bus sees every event).
  const std::string trace_path = resolve_trace_path(config.trace_path);
  const bool profile = config.profile || profile_env_enabled();
  // A chrome trace is rendered from spans, so asking for one implies
  // recording them.
  const bool spans = config.spans || spans_env_enabled() ||
                     !config.trace_chrome_path.empty();
  // The report/snapshot outputs need the swarm sampler, and the sampler's
  // anomaly scan needs the in-memory event stream for stall attribution.
  const bool wants_sampling = config.sample_interval.count_micros() > 0 ||
                              !config.report_html_path.empty() ||
                              !config.snapshot_json_path.empty();
  std::optional<obs::Observability> observability;
  if (!trace_path.empty() || config.timeline_summary ||
      !config.metrics_csv_path.empty() || wants_sampling || profile ||
      spans) {
    obs::ObsOptions obs_options;
    obs_options.trace_path = trace_path;
    obs_options.collect_events = config.timeline_summary || wants_sampling;
    obs_options.metrics_csv_path = config.metrics_csv_path;
    obs_options.clock = [&sim] { return sim.now(); };
    obs_options.profile = profile;
    obs_options.spans = spans;
    obs_options.span_capacity = config.span_capacity;
    observability.emplace(std::move(obs_options));
  }

  // --- Content: the fixed 2-minute 1 Mbps video, spliced per config —
  // synthesized once per (video_seed, splicer) process-wide and shared
  // immutably across runs and sweep workers.
  const std::shared_ptr<const ContentArtifacts> content =
      ContentCache::global().get(config.video_seed, config.splicer);
  const core::SegmentIndex& index = content->index;

  ScenarioResult result;
  result.segment_count = index.count();
  result.total_transfer_bytes = index.total_size();
  result.media_bytes = index.total_media_size();
  result.overhead_ratio = index.overhead_ratio();
  result.largest_segment = index.largest_segment();
  result.smallest_segment = index.smallest_segment();

  // --- Network: star topology, per-node loss contribution chosen so the
  // end-to-end loss between any two peers matches the configured value.
  net::Network network{sim};
  network.set_full_reallocation(config.full_reallocation ||
                                full_realloc_env_enabled());
  const double node_loss = 1.0 - std::sqrt(1.0 - config.pair_loss);

  net::NodeSpec seeder_spec;
  seeder_spec.uplink = config.bandwidth;
  seeder_spec.downlink = config.bandwidth;
  seeder_spec.one_way_delay = config.seeder_delay;
  seeder_spec.loss = node_loss;
  const net::NodeId seeder_node = network.add_node(seeder_spec);

  std::vector<net::NodeId> viewer_nodes;
  for (std::size_t i = 1; i < config.nodes; ++i) {
    net::NodeSpec spec;
    spec.uplink = config.bandwidth;
    spec.downlink = config.bandwidth;
    spec.one_way_delay = config.peer_delay;
    spec.loss = node_loss;
    viewer_nodes.push_back(network.add_node(spec));
  }

  // --- Swarm. Aliased shared_ptrs point into the cached artifact, so
  // the swarm shares the content instead of copying it per run.
  Rng rng{config.seed};
  p2p::Swarm swarm{
      network, rng,
      std::shared_ptr<const core::SegmentIndex>{content, &content->index},
      std::shared_ptr<const std::string>{content, &content->playlist_text}};
  swarm.set_brute_force_oracle(config.brute_force_scheduling);
  p2p::PeerConfig peer_config;
  peer_config.max_upload_slots = config.upload_slots;
  peer_config.codec_roundtrip = config.wire_roundtrip;
  swarm.add_seeder(seeder_node, peer_config);

  const auto policy = std::shared_ptr<const core::PoolPolicy>(
      core::make_pool_policy(config.policy));
  std::vector<p2p::Leecher*> leechers;
  for (net::NodeId node : viewer_nodes) {
    p2p::LeecherConfig leecher_config;
    leecher_config.policy = policy;
    leecher_config.bandwidth_hint = config.bandwidth;
    leecher_config.brute_force_scheduling = config.brute_force_scheduling;
    leecher_config.rarest_window = config.rarest_window;
    leecher_config.announce_max_peers = config.announce_max_peers;
    leecher_config.control_epoch = config.control_epoch;
    p2p::Leecher& leecher =
        swarm.add_leecher(node, peer_config, leecher_config);
    leechers.push_back(&leecher);
  }

  // Staggered joins (a flash crowd, but not a single lock-step instant).
  for (p2p::Leecher* leecher : leechers) {
    const Duration when = Duration::seconds(
        rng.uniform(0.0, config.join_spread.as_seconds()));
    sim.at(TimePoint::origin() + when, [leecher] { leecher->join(); });
  }

  std::unique_ptr<p2p::ChurnModel> churn;
  if (config.churn) {
    p2p::ChurnModel::Params params;
    params.mean_lifetime = config.churn_mean_lifetime;
    churn = std::make_unique<p2p::ChurnModel>(swarm, rng, params);
    // Install once everyone has joined.
    sim.at(TimePoint::origin() + config.join_spread + Duration::seconds(1),
           [&churn] { churn->install(); });
  }

  // --- Swarm-health sampling: a periodic probe into a downsampling
  // time-series store. The sampler lives in obs/ and never sees p2p
  // types; the swarm hands it plain-data observations.
  const Duration sample_interval = config.sample_interval.count_micros() > 0
                                       ? config.sample_interval
                                       : Duration::seconds(1.0);
  std::optional<obs::TimeSeriesStore> series_store;
  std::optional<obs::SwarmSampler> sampler;
  std::optional<sim::PeriodicTask> sampling_task;
  if (wants_sampling) {
    series_store.emplace();
    sampler.emplace(*series_store, [&swarm] { return swarm.observe(); });
    sampler->sample(sim.now());  // t=0 baseline
    sampling_task.emplace(sim, sample_interval,
                          [&sampler, &sim] { sampler->sample(sim.now()); });
    sampling_task->start();
  }

  // --- Run until every online viewer finished (checked at a coarse
  // cadence) or the time limit.
  const TimePoint deadline = TimePoint::origin() + config.time_limit;
  while (sim.now() < deadline) {
    const TimePoint next = sim.next_event_time();
    if (next.is_infinite()) break;
    if (next > deadline) {
      sim.run_until(deadline);
      break;
    }
    sim.run_until(std::min(next + Duration::seconds(1), deadline));
    if (swarm.all_finished()) break;
  }

  // --- Collect.
  OnlineStats stalls;
  OnlineStats stall_seconds;
  OnlineStats startup_seconds;
  for (p2p::Leecher* leecher : leechers) {
    if (!leecher->has_player()) {
      // Never got past the playlist fetch within the time limit.
      streaming::QoeMetrics empty;
      result.viewers.push_back(empty);
      stalls.add(0.0);
      stall_seconds.add(0.0);
      continue;
    }
    const streaming::QoeMetrics& m = leecher->metrics();
    result.viewers.push_back(m);
    stalls.add(static_cast<double>(m.stall_count));
    stall_seconds.add(m.total_stall_duration.as_seconds());
    if (m.started) startup_seconds.add(m.startup_time.as_seconds());
    if (m.finished) ++result.finished_viewers;
  }
  result.viewer_count = leechers.size();
  result.total_stalls = stalls.sum();
  result.mean_stalls = stalls.mean();
  result.total_stall_seconds = stall_seconds.sum();
  result.mean_stall_seconds = stall_seconds.mean();
  result.mean_startup_seconds = startup_seconds.mean();
  result.wall_time = sim.now() - TimePoint::origin();
  result.churn_departures = churn ? churn->departures() : 0;

  const p2p::Peer* seeder_peer = swarm.find(seeder_node);
  result.seeder_uploaded = seeder_peer->stats().bytes_uploaded;
  result.requests_served = seeder_peer->stats().requests_served;
  result.requests_choked = seeder_peer->stats().requests_choked;
  result.seeder_served = seeder_peer->stats().requests_served;
  result.seeder_choked = seeder_peer->stats().requests_choked;
  for (p2p::Leecher* leecher : leechers) {
    result.peers_uploaded += leecher->stats().bytes_uploaded;
    result.requests_served += leecher->stats().requests_served;
    result.requests_choked += leecher->stats().requests_choked;
    const p2p::SchedulerStats& sched = leecher->scheduler_stats();
    result.segment_picks += sched.segment_picks;
    result.holder_picks += sched.holder_picks;
    result.candidates_scanned += sched.candidates_scanned;
    result.scheduling_engine_ns += sched.engine_ns;
    result.speculation_adopted += leecher->speculation_adopted();
    result.speculation_recomputed += leecher->speculation_recomputed();
    const p2p::ControlPlaneStats& control = leecher->control_stats();
    result.control_have_updates += control.have_updates;
    result.control_digests_sent += control.digests_sent;
    result.control_messages_coalesced += control.messages_coalesced;
    result.control_bytes_saved += control.bytes_saved;
  }
  result.control_coalescing_ratio =
      result.control_have_updates > 0
          ? static_cast<double>(result.control_messages_coalesced) /
                static_cast<double>(result.control_have_updates)
          : 0.0;
  result.pieces_aborted = swarm.stats().pieces_aborted;
  result.messages_routed = swarm.stats().messages_routed;
  result.messages_dropped = swarm.stats().messages_dropped;
  result.messages_verified = swarm.stats().messages_verified;
  // Virtual read: folds in each still-active flow's accrued-but-
  // unsettled progress (lazy settlement, DESIGN.md §16).
  result.network_bytes_delivered = network.bytes_delivered();
  if (observability && config.timeline_summary) {
    result.timeline = observability->timeline();
  }

  // --- Resource accounting (always; capacity-based, deterministic).
  result.events_fired = sim.fired_count();
  result.heap_high_water = sim.heap_high_water();
  result.heap_compactions = sim.heap_compactions();
  const net::NetworkStats& net_stats = network.stats();
  result.reallocations = net_stats.reallocations;
  result.reallocations_scoped = net_stats.reallocations_scoped;
  result.flows_retouched = net_stats.flows_retouched;
  result.reallocate_touched_flows_ratio =
      net_stats.flows_active_integral > 0
          ? static_cast<double>(net_stats.flows_retouched) /
                static_cast<double>(net_stats.flows_active_integral)
          : 0.0;
  result.settled_flows_per_event =
      result.events_fired > 0
          ? static_cast<double>(net_stats.flows_settled) /
                static_cast<double>(result.events_fired)
          : 0.0;
  result.memory = swarm.memory_breakdown();
  if (series_store) {
    result.memory.add("obs.timeseries", series_store->memory_bytes());
  }
  if (observability && observability->span_tracing()) {
    // Close anything still open (in-flight downloads at the time limit)
    // so the exporters see finite windows, then account for the buffer.
    obs::SpanRecorder* recorder = observability->span_recorder();
    recorder->finish(sim.now());
    result.memory.add("obs.spans", recorder->memory_bytes());
    result.spans_recorded = recorder->spans().size();
    result.spans_dropped = recorder->dropped();
    result.waterfall = obs::segment_waterfall(recorder->spans());
  }
  result.memory_total_bytes = result.memory.total();
  result.memory_peak_bytes = result.memory_total_bytes;
  if (!leechers.empty()) {
    result.memory_bytes_per_peer =
        static_cast<double>(result.memory_total_bytes) /
        static_cast<double>(leechers.size());
  }
  if (observability) {
    result.profile = observability->profile_snapshot();
  }
  if (observability && !config.trace_chrome_path.empty()) {
    obs::write_text_file(
        config.trace_chrome_path,
        obs::render_chrome_trace(observability->spans(),
                                 profile ? &result.profile : nullptr));
  }

  if (wants_sampling) {
    sampling_task->stop();
    sampler->sample(sim.now());  // closing sample at the run's end
    if (const obs::Series* mem_total = series_store->find("mem.total")) {
      result.memory_peak_bytes =
          std::max(result.memory_peak_bytes,
                   static_cast<std::uint64_t>(mem_total->max_value()));
    }
    obs::RunInfo info;
    info.title = config.report_title;
    if (info.title.empty()) {
      char buf[48];
      std::snprintf(buf, sizeof buf, "%.0f kB/s",
                    config.bandwidth.kilobytes_per_second());
      info.title = config.splicer + " splicing, " + config.policy +
                   " pool @ " + buf;
    }
    info.params = report_params(config, sample_interval);
    obs::ReportData report = obs::build_report(
        std::move(info), *series_store, observability->events(),
        &observability->registry(),
        observability->span_tracing() ? &observability->spans() : nullptr);
    report.profile = result.profile;
    report.memory = result.memory;
    report.memory_peak_bytes = result.memory_peak_bytes;
    report.memory_bytes_per_peer = result.memory_bytes_per_peer;
    result.anomaly_count = report.anomalies.size();
    if (!config.snapshot_json_path.empty()) {
      obs::write_text_file(config.snapshot_json_path,
                           obs::render_json_snapshot(report));
    }
    if (!config.report_html_path.empty()) {
      obs::write_text_file(config.report_html_path,
                           obs::render_html_report(report));
    }
  }
  return result;
}

ScenarioConfig repetition_config(const ScenarioConfig& base, int run_index,
                                 int repetitions) {
  require(repetitions >= 1, "need at least one repetition");
  require(run_index >= 0 && run_index < repetitions,
          "repetition index out of range");
  ScenarioConfig config = base;
  config.seed =
      static_cast<std::uint64_t>(run_index + 1) * std::uint64_t{1000003};
  // Each repetition gets its own trace/report/snapshot file; a shared
  // path would be truncated by every run after the first (and, in a
  // parallel sweep, raced on).
  config.trace_path = resolve_trace_path(base.trace_path);
  if (repetitions > 1) {
    if (!config.trace_path.empty()) {
      config.trace_path += ".run" + std::to_string(run_index + 1);
    }
    if (!config.report_html_path.empty()) {
      config.report_html_path =
          with_run_suffix(base.report_html_path, run_index + 1);
    }
    if (!config.snapshot_json_path.empty()) {
      config.snapshot_json_path =
          with_run_suffix(base.snapshot_json_path, run_index + 1);
    }
    if (!config.trace_chrome_path.empty()) {
      config.trace_chrome_path =
          with_run_suffix(base.trace_chrome_path, run_index + 1);
    }
  }
  return config;
}

RepeatedResult aggregate_repeated(std::vector<ScenarioResult> runs) {
  require(!runs.empty(), "need at least one repetition");
  RepeatedResult repeated;
  std::vector<double> stalls;
  std::vector<double> stall_seconds;
  std::vector<double> startup;
  std::vector<double> per_viewer;
  for (const ScenarioResult& run : runs) {
    stalls.push_back(run.total_stalls);
    stall_seconds.push_back(run.total_stall_seconds);
    startup.push_back(run.mean_startup_seconds);
    per_viewer.push_back(run.mean_stalls);
  }
  repeated.stalls = static_cast<double>(rounded_average(stalls));
  repeated.stall_seconds = mean_of(stall_seconds);
  repeated.startup_seconds = mean_of(startup);
  repeated.mean_stalls_per_viewer = mean_of(per_viewer);
  repeated.runs = std::move(runs);
  return repeated;
}

RepeatedResult run_repeated(ScenarioConfig config, int repetitions,
                            int jobs) {
  require(repetitions >= 1, "need at least one repetition");
  // All repetitions share one content identity; publish it before the
  // fan-out so no worker starts by blocking on another's computation.
  (void)ContentCache::global().get(config.video_seed, config.splicer);
  std::vector<ScenarioResult> runs(static_cast<std::size_t>(repetitions));
  ParallelRunner runner{jobs};
  runner.run(static_cast<std::size_t>(repetitions), [&](std::size_t r) {
    runs[r] =
        run_scenario(repetition_config(config, static_cast<int>(r),
                                       repetitions));
  });
  return aggregate_repeated(std::move(runs));
}

}  // namespace vsplice::experiments
