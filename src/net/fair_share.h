// Max-min fair rate allocation (progressive filling / water-filling).
//
// Every active transfer is a fluid flow crossing a set of directed links;
// each flow may also carry its own rate cap (its TCP congestion-window
// limit). The allocation gives every flow the largest rate such that no
// link is oversubscribed and no flow can be increased without decreasing
// an already-smaller flow — the standard fluid abstraction for bandwidth
// sharing among TCP connections on shaped links.
#pragma once

#include <vector>

#include "common/units.h"
#include "net/types.h"

namespace vsplice::net {

struct FlowSpec {
  /// Links the flow crosses; LinkId::value indexes `link_capacity`.
  std::vector<LinkId> path;
  /// Flow's own rate ceiling (Rate::infinity() when unconstrained).
  Rate cap = Rate::infinity();
};

/// Computes the max-min fair allocation. `link_capacity[l]` is the
/// capacity of link l; flows with an empty path are limited only by their
/// cap. Zero-capacity links yield zero-rate flows.
[[nodiscard]] std::vector<Rate> max_min_allocation(
    const std::vector<FlowSpec>& flows,
    const std::vector<Rate>& link_capacity);

}  // namespace vsplice::net
