// Max-min fair rate allocation (progressive filling / water-filling).
//
// Every active transfer is a fluid flow crossing a set of directed links;
// each flow may also carry its own rate cap (its TCP congestion-window
// limit). The allocation gives every flow the largest rate such that no
// link is oversubscribed and no flow can be increased without decreasing
// an already-smaller flow — the standard fluid abstraction for bandwidth
// sharing among TCP connections on shaped links.
//
// Two implementations:
//   - max_min_allocation: the generic reference for arbitrary paths.
//     Allocates its working state per call; used by tests and as the
//     oracle in the randomized differential suite.
//   - StarAllocator: the hot-path specialization for the star topology,
//     where every flow crosses exactly (hub trunk, source uplink,
//     destination downlink). All working state lives in reusable scratch
//     buffers owned by the allocator, so steady-state calls perform zero
//     heap allocations and run in O(flows · bottleneck-iterations). The
//     two implementations compute identical allocations (the progressive
//     filling order and epsilon handling are the same).
#pragma once

#include <vector>

#include "common/units.h"
#include "net/types.h"
#include "sim/task_pool.h"

namespace vsplice::net {

struct FlowSpec {
  /// Links the flow crosses; LinkId::value indexes `link_capacity`.
  std::vector<LinkId> path;
  /// Flow's own rate ceiling (Rate::infinity() when unconstrained).
  Rate cap = Rate::infinity();
};

/// Computes the max-min fair allocation. `link_capacity[l]` is the
/// capacity of link l; flows with an empty path are limited only by their
/// cap. Zero-capacity links yield zero-rate flows.
[[nodiscard]] std::vector<Rate> max_min_allocation(
    const std::vector<FlowSpec>& flows,
    const std::vector<Rate>& link_capacity);

/// A flow on the star: the fixed path (hub trunk = link 0, uplink,
/// downlink) is implied, so only the two access-link indices and the cap
/// are carried — no per-flow path vector, no allocation.
struct StarFlowSpec {
  std::uint32_t uplink = 0;    // LinkId::value of the source's uplink
  std::uint32_t downlink = 0;  // LinkId::value of the destination's downlink
  Rate cap = Rate::infinity();
};

/// Progressive-filling allocator specialized to star paths. Reuse one
/// instance across calls: the scratch buffers grow to the high-water mark
/// of (flows, links) and are never reallocated afterwards.
class StarAllocator {
 public:
  StarAllocator() = default;
  StarAllocator(const StarAllocator&) = delete;
  StarAllocator& operator=(const StarAllocator&) = delete;

  /// Computes the max-min fair allocation for star flows; link 0 is the
  /// hub trunk every flow crosses. `out` is resized to flows.size().
  /// Results match max_min_allocation on the equivalent 3-link paths.
  void allocate(const std::vector<StarFlowSpec>& flows,
                const std::vector<Rate>& link_capacity,
                std::vector<Rate>& out);

  /// Optional worker pool for sharding the per-round scans (DESIGN.md
  /// §14). The per-round min reductions and the cap/bottleneck predicate
  /// passes split across the pool's lanes; `fix_flow` — the only
  /// floating-point *accumulation* — always applies serially in flow
  /// index order, so the allocation is bit-identical with any pool (min
  /// over a deterministic partition is an exact, order-free reduction;
  /// the predicates write disjoint per-flow / per-link flags). Sharding
  /// engages only when a round scans kParallelFlows or more flows; below
  /// that the scan is cheaper than the handoff. Pass nullptr (the
  /// default) for the plain serial path. The pool must be idle for the
  /// duration of every allocate() call.
  void set_task_pool(sim::TaskPool* pool) { pool_ = pool; }

  /// Flow count at which a pooled allocator shards its per-round scans.
  static constexpr std::size_t kParallelFlows = 512;

  /// Bytes held by the scratch buffers (capacity-based; they grow to
  /// the high-water mark of (flows, links) and stay there). The
  /// pool-only scratch (hit_, lane_min_) is deliberately excluded:
  /// accounting it would make reported memory depend on loop_threads,
  /// breaking the serial/parallel byte-identity of ScenarioResult.
  [[nodiscard]] std::uint64_t memory_bytes() const {
    return static_cast<std::uint64_t>(remaining_.capacity() * sizeof(double) +
                                      active_.capacity() * sizeof(std::uint32_t) +
                                      cap_.capacity() * sizeof(double) +
                                      alloc_.capacity() * sizeof(double) +
                                      fixed_.capacity() + bottleneck_.capacity());
  }

 private:
  // Scratch (sized on demand, retained across calls).
  std::vector<double> remaining_;        // per link: spare capacity
  std::vector<std::uint32_t> active_;    // per link: unfixed flows crossing
  std::vector<double> cap_;              // per flow: cap in B/s (inf = none)
  std::vector<double> alloc_;            // per flow: assigned rate
  std::vector<unsigned char> fixed_;     // per flow: frozen at alloc_
  std::vector<unsigned char> bottleneck_;  // per link: binds this round
  std::vector<unsigned char> hit_;       // per flow: predicate fired
  std::vector<double> lane_min_;         // per pool block: partial min
  sim::TaskPool* pool_ = nullptr;
};

}  // namespace vsplice::net
