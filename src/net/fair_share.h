// Max-min fair rate allocation (progressive filling / water-filling).
//
// Every active transfer is a fluid flow crossing a set of directed links;
// each flow may also carry its own rate cap (its TCP congestion-window
// limit). The allocation gives every flow the largest rate such that no
// link is oversubscribed and no flow can be increased without decreasing
// an already-smaller flow — the standard fluid abstraction for bandwidth
// sharing among TCP connections on shaped links.
//
// Two implementations:
//   - max_min_allocation: the generic reference for arbitrary paths.
//     Allocates its working state per call; used by tests and as the
//     oracle in the randomized differential suite.
//   - StarAllocator: the hot-path specialization for the star topology,
//     where every flow crosses exactly (hub trunk, source uplink,
//     destination downlink). All working state lives in reusable scratch
//     buffers owned by the allocator, so steady-state calls perform zero
//     heap allocations and run in O(flows · bottleneck-iterations). The
//     two implementations compute identical allocations (the progressive
//     filling order and epsilon handling are the same).
#pragma once

#include <vector>

#include "common/units.h"
#include "net/types.h"

namespace vsplice::net {

struct FlowSpec {
  /// Links the flow crosses; LinkId::value indexes `link_capacity`.
  std::vector<LinkId> path;
  /// Flow's own rate ceiling (Rate::infinity() when unconstrained).
  Rate cap = Rate::infinity();
};

/// Computes the max-min fair allocation. `link_capacity[l]` is the
/// capacity of link l; flows with an empty path are limited only by their
/// cap. Zero-capacity links yield zero-rate flows.
[[nodiscard]] std::vector<Rate> max_min_allocation(
    const std::vector<FlowSpec>& flows,
    const std::vector<Rate>& link_capacity);

/// A flow on the star: the fixed path (hub trunk = link 0, uplink,
/// downlink) is implied, so only the two access-link indices and the cap
/// are carried — no per-flow path vector, no allocation.
struct StarFlowSpec {
  std::uint32_t uplink = 0;    // LinkId::value of the source's uplink
  std::uint32_t downlink = 0;  // LinkId::value of the destination's downlink
  Rate cap = Rate::infinity();
};

/// Progressive-filling allocator specialized to star paths. Reuse one
/// instance across calls: the scratch buffers grow to the high-water mark
/// of (flows, links) and are never reallocated afterwards.
class StarAllocator {
 public:
  StarAllocator() = default;
  StarAllocator(const StarAllocator&) = delete;
  StarAllocator& operator=(const StarAllocator&) = delete;

  /// Computes the max-min fair allocation for star flows; link 0 is the
  /// hub trunk every flow crosses. `out` is resized to flows.size().
  /// Results match max_min_allocation on the equivalent 3-link paths.
  void allocate(const std::vector<StarFlowSpec>& flows,
                const std::vector<Rate>& link_capacity,
                std::vector<Rate>& out);

  /// Bytes held by the scratch buffers (capacity-based; they grow to
  /// the high-water mark of (flows, links) and stay there).
  [[nodiscard]] std::uint64_t memory_bytes() const {
    return static_cast<std::uint64_t>(remaining_.capacity() * sizeof(double) +
                                      active_.capacity() * sizeof(std::uint32_t) +
                                      cap_.capacity() * sizeof(double) +
                                      alloc_.capacity() * sizeof(double) +
                                      fixed_.capacity() + bottleneck_.capacity());
  }

 private:
  // Scratch (sized on demand, retained across calls).
  std::vector<double> remaining_;        // per link: spare capacity
  std::vector<std::uint32_t> active_;    // per link: unfixed flows crossing
  std::vector<double> cap_;              // per flow: cap in B/s (inf = none)
  std::vector<double> alloc_;            // per flow: assigned rate
  std::vector<unsigned char> fixed_;     // per flow: frozen at alloc_
  std::vector<unsigned char> bottleneck_;  // per link: binds this round
};

}  // namespace vsplice::net
