#include "net/fair_share.h"

#include <algorithm>
#include <limits>

#include "common/error.h"
#include "obs/profiler.h"

namespace vsplice::net {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
// Relative slack when comparing shares, to absorb floating-point noise.
constexpr double kEps = 1e-9;
}  // namespace

std::vector<Rate> max_min_allocation(
    const std::vector<FlowSpec>& flows,
    const std::vector<Rate>& link_capacity) {
  const std::size_t n = flows.size();
  const std::size_t links = link_capacity.size();

  std::vector<double> remaining(links);
  for (std::size_t l = 0; l < links; ++l) {
    const Rate c = link_capacity[l];
    require(c >= Rate::zero(), "link capacity must be non-negative");
    remaining[l] = c.is_infinite() ? kInf : c.bytes_per_second();
  }

  std::vector<std::size_t> active_on_link(links, 0);
  for (const auto& flow : flows) {
    for (LinkId l : flow.path) {
      require(l.value < links, "flow path references unknown link");
      ++active_on_link[l.value];
    }
  }

  std::vector<double> alloc(n, 0.0);
  std::vector<bool> fixed(n, false);
  std::size_t active = n;

  auto fix_flow = [&](std::size_t f, double rate) {
    alloc[f] = rate;
    fixed[f] = true;
    --active;
    for (LinkId l : flows[f].path) {
      --active_on_link[l.value];
      if (remaining[l.value] != kInf) {
        remaining[l.value] = std::max(0.0, remaining[l.value] - rate);
      }
    }
  };

  while (active > 0) {
    // Equal share offered by the currently most constrained link.
    double min_link_share = kInf;
    for (std::size_t l = 0; l < links; ++l) {
      if (active_on_link[l] == 0) continue;
      const double share =
          remaining[l] / static_cast<double>(active_on_link[l]);
      min_link_share = std::min(min_link_share, share);
    }

    // Smallest cap among still-active flows.
    double min_cap = kInf;
    for (std::size_t f = 0; f < n; ++f) {
      if (fixed[f]) continue;
      const double cap =
          flows[f].cap.is_infinite() ? kInf : flows[f].cap.bytes_per_second();
      min_cap = std::min(min_cap, cap);
    }

    const double level = std::min(min_link_share, min_cap);

    if (level == kInf) {
      // No finite constraint binds the remaining flows.
      for (std::size_t f = 0; f < n; ++f) {
        if (!fixed[f]) fix_flow(f, kInf);
      }
      break;
    }

    const double threshold = level * (1.0 + kEps) + 1e-12;

    // First settle flows whose own cap binds at (or below) this level:
    // they take less than their equal share, freeing capacity for others.
    bool fixed_by_cap = false;
    for (std::size_t f = 0; f < n; ++f) {
      if (fixed[f]) continue;
      const double cap =
          flows[f].cap.is_infinite() ? kInf : flows[f].cap.bytes_per_second();
      if (cap <= threshold) {
        fix_flow(f, cap);
        fixed_by_cap = true;
      }
    }
    if (fixed_by_cap) continue;

    // Otherwise the level came from a bottleneck link: freeze every flow
    // crossing a link whose share equals the level.
    std::vector<bool> is_bottleneck(links, false);
    for (std::size_t l = 0; l < links; ++l) {
      if (active_on_link[l] == 0) continue;
      const double share =
          remaining[l] / static_cast<double>(active_on_link[l]);
      if (share <= threshold) is_bottleneck[l] = true;
    }
    bool fixed_any = false;
    for (std::size_t f = 0; f < n; ++f) {
      if (fixed[f]) continue;
      const bool crosses = std::any_of(
          flows[f].path.begin(), flows[f].path.end(),
          [&](LinkId l) { return is_bottleneck[l.value]; });
      if (crosses) {
        fix_flow(f, level);
        fixed_any = true;
      }
    }
    check_invariant(fixed_any,
                    "max-min allocation made no progress; bad input?");
  }

  std::vector<Rate> result(n);
  for (std::size_t f = 0; f < n; ++f) {
    result[f] = alloc[f] == kInf ? Rate::infinity()
                                 : Rate::bytes_per_second(alloc[f]);
  }
  return result;
}

void StarAllocator::allocate(const std::vector<StarFlowSpec>& flows,
                             const std::vector<Rate>& link_capacity,
                             std::vector<Rate>& out) {
  VSPLICE_PROFILE_SCOPE("net.star_allocate");
  const std::size_t n = flows.size();
  const std::size_t links = link_capacity.size();
  require(links >= 1, "star topology needs the hub trunk (link 0)");

  remaining_.resize(links);
  for (std::size_t l = 0; l < links; ++l) {
    const Rate c = link_capacity[l];
    require(c >= Rate::zero(), "link capacity must be non-negative");
    remaining_[l] = c.is_infinite() ? kInf : c.bytes_per_second();
  }

  active_.assign(links, 0);
  cap_.resize(n);
  alloc_.assign(n, 0.0);
  fixed_.assign(n, 0);
  for (std::size_t f = 0; f < n; ++f) {
    const StarFlowSpec& flow = flows[f];
    require(flow.uplink < links && flow.downlink < links,
            "flow path references unknown link");
    ++active_[0];
    ++active_[flow.uplink];
    ++active_[flow.downlink];
    cap_[f] = flow.cap.is_infinite() ? kInf : flow.cap.bytes_per_second();
  }

  std::size_t active_flows = n;
  const auto fix_flow = [&](std::size_t f, double rate) {
    alloc_[f] = rate;
    fixed_[f] = 1;
    --active_flows;
    const std::uint32_t path[3] = {0, flows[f].uplink, flows[f].downlink};
    for (std::uint32_t l : path) {
      --active_[l];
      if (remaining_[l] != kInf) {
        remaining_[l] = std::max(0.0, remaining_[l] - rate);
      }
    }
  };

  // Sharding (DESIGN.md §14): the per-round scans below are either exact
  // min reductions or pure per-element predicates — both yield identical
  // results under any partition — while every fix_flow, the only
  // order-sensitive floating-point accumulation, applies serially in
  // flow index order. A round therefore computes the same allocation
  // sharded or not; the pool only changes who walks the arrays.
  sim::TaskPool* pool =
      (pool_ != nullptr && pool_->lanes() > 1 && n >= kParallelFlows)
          ? pool_
          : nullptr;
  const auto for_blocks = [&](std::size_t count, auto&& body) {
    if (pool != nullptr) {
      pool->parallel_for(count, body);
    } else if (count > 0) {
      body(0, 0, count);
    }
  };
  const std::size_t lanes = pool != nullptr ? pool->lanes() : 1;
  hit_.resize(n);

  while (active_flows > 0) {
    // Equal share offered by the currently most constrained link.
    lane_min_.assign(std::max<std::size_t>(1, std::min(links, lanes)), kInf);
    for_blocks(links, [&](std::size_t block, std::size_t b, std::size_t e) {
      double m = kInf;
      for (std::size_t l = b; l < e; ++l) {
        if (active_[l] == 0) continue;
        m = std::min(m, remaining_[l] / static_cast<double>(active_[l]));
      }
      lane_min_[block] = m;
    });
    double min_link_share = kInf;
    for (const double m : lane_min_) min_link_share = std::min(min_link_share, m);

    // Smallest cap among still-active flows.
    lane_min_.assign(std::max<std::size_t>(1, std::min(n, lanes)), kInf);
    for_blocks(n, [&](std::size_t block, std::size_t b, std::size_t e) {
      double m = kInf;
      for (std::size_t f = b; f < e; ++f) {
        if (fixed_[f] == 0) m = std::min(m, cap_[f]);
      }
      lane_min_[block] = m;
    });
    double min_cap = kInf;
    for (const double m : lane_min_) min_cap = std::min(min_cap, m);

    const double level = std::min(min_link_share, min_cap);

    if (level == kInf) {
      // No finite constraint binds the remaining flows.
      for (std::size_t f = 0; f < n; ++f) {
        if (fixed_[f] == 0) fix_flow(f, kInf);
      }
      break;
    }

    const double threshold = level * (1.0 + kEps) + 1e-12;

    // First settle flows whose own cap binds at (or below) this level:
    // they take less than their equal share, freeing capacity for others.
    // Flag in (possibly sharded) scan, fix serially in index order.
    for_blocks(n, [&](std::size_t, std::size_t b, std::size_t e) {
      for (std::size_t f = b; f < e; ++f) {
        hit_[f] = static_cast<unsigned char>(fixed_[f] == 0 &&
                                             cap_[f] <= threshold);
      }
    });
    bool fixed_by_cap = false;
    for (std::size_t f = 0; f < n; ++f) {
      if (hit_[f] != 0) {
        fix_flow(f, cap_[f]);
        fixed_by_cap = true;
      }
    }
    if (fixed_by_cap) continue;

    // Otherwise the level came from a bottleneck link: freeze every flow
    // crossing a link whose share equals the level.
    bottleneck_.assign(links, 0);
    for_blocks(links, [&](std::size_t, std::size_t b, std::size_t e) {
      for (std::size_t l = b; l < e; ++l) {
        if (active_[l] == 0) continue;
        const double share = remaining_[l] / static_cast<double>(active_[l]);
        if (share <= threshold) bottleneck_[l] = 1;
      }
    });
    for_blocks(n, [&](std::size_t, std::size_t b, std::size_t e) {
      for (std::size_t f = b; f < e; ++f) {
        hit_[f] = static_cast<unsigned char>(
            fixed_[f] == 0 &&
            (bottleneck_[0] != 0 || bottleneck_[flows[f].uplink] != 0 ||
             bottleneck_[flows[f].downlink] != 0));
      }
    });
    bool fixed_any = false;
    for (std::size_t f = 0; f < n; ++f) {
      if (hit_[f] != 0) {
        fix_flow(f, level);
        fixed_any = true;
      }
    }
    check_invariant(fixed_any,
                    "star allocation made no progress; bad input?");
  }

  out.resize(n);
  for (std::size_t f = 0; f < n; ++f) {
    out[f] = alloc_[f] == kInf ? Rate::infinity()
                               : Rate::bytes_per_second(alloc_[f]);
  }
}

}  // namespace vsplice::net
