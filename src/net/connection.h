// A TCP-like connection between two hosts of the fluid network.
//
// Adds the TCP behaviours the fluid layer cannot see: the 3-way handshake
// before any data moves, per-packet retransmission delays for control
// messages, and a slow-start congestion window whose current value caps
// the rate of the in-flight response flow (ramped once per RTT until the
// Mathis ceiling). A connection left idle longer than the RTO restarts
// from the initial window, so "one connection per segment" and
// "persistent connection" genuinely behave differently — the effect the
// paper's 2-second-segment results hinge on.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "net/network.h"
#include "net/tcp_model.h"
#include "net/types.h"

namespace vsplice::net {

class Connection {
 public:
  struct FetchResult {
    Bytes bytes_delivered = 0;
    Duration elapsed = Duration::zero();
    bool aborted = false;
  };

  enum class State { Fresh, Connecting, Established, Closed };

  /// `rng` must outlive the connection (it is the run's master stream or
  /// a peer's fork of it).
  Connection(Network& network, Rng& rng, NodeId client, NodeId server);
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;
  ~Connection();

  /// Performs the handshake, then invokes `on_established`.
  void connect(std::function<void()> on_established);

  [[nodiscard]] State state() const { return state_; }
  [[nodiscard]] bool established() const {
    return state_ == State::Established;
  }

  /// Delivers a small control message to the other side after the path's
  /// packet delay (including loss retransmissions). Direction is chosen
  /// by the sender argument. The callback is cancelled if the connection
  /// closes first.
  void send_message(NodeId sender, Bytes size,
                    std::function<void()> on_delivered);

  /// Request/response exchange: a small request packet client->server,
  /// then a `response_size` fluid flow server->client, slow-start capped.
  /// Only one fetch may be in flight per connection.
  void fetch(Bytes request_size, Bytes response_size,
             std::function<void(const FetchResult&)> on_done);

  /// Server-initiated transfer of `size` bytes to the client (the PIECE
  /// payload after a granted request): same slow-start-capped flow as
  /// fetch, but without the request leg. Shares the in-flight slot with
  /// fetch.
  void push(Bytes size, std::function<void(const FetchResult&)> on_done);

  [[nodiscard]] bool fetch_in_progress() const {
    return fetch_.has_value();
  }

  /// Current rate of the in-flight response flow (zero when none).
  [[nodiscard]] Rate transfer_rate() const;

  /// Aborts everything in flight; pending callbacks are dropped, an
  /// active fetch completes with aborted=true.
  void close();

  [[nodiscard]] NodeId client() const { return client_; }
  [[nodiscard]] NodeId server() const { return server_; }
  [[nodiscard]] Duration rtt() const { return rtt_; }
  [[nodiscard]] double loss() const { return loss_; }

  /// Stable handle in the network's connection registry; valid until the
  /// connection is destroyed.
  [[nodiscard]] std::uint64_t id() const { return id_; }

  /// Causal-span context for the transfer this connection was opened
  /// for: the requesting leecher stamps its segment-root span id, the
  /// open request-send span id, and the segment index here. The serving
  /// peer takes the request span when the REQUEST arrives, and the
  /// connection itself opens/closes the PIECE-transfer span around the
  /// response flow. Zero ids are inert (span tracing off), so this is
  /// three member stores on the hot path.
  void set_span_context(std::uint64_t parent, std::uint64_t request_span,
                        std::int64_t segment) {
    span_parent_ = parent;
    span_request_ = request_span;
    span_segment_ = segment;
  }
  /// Returns the pending request-send span id and clears it — the
  /// caller becomes responsible for closing it. 0 when none.
  std::uint64_t take_request_span() {
    const std::uint64_t id = span_request_;
    span_request_ = 0;
    return id;
  }
  /// The segment-root span id of the download this connection serves
  /// (0 = no span context).
  [[nodiscard]] std::uint64_t span_parent() const { return span_parent_; }
  [[nodiscard]] std::int64_t span_segment() const { return span_segment_; }

 private:
  struct ActiveFetch {
    FlowId flow;
    TimePoint started;
    Bytes size = 0;
    std::function<void(const FetchResult&)> on_done;
    sim::EventId ramp_event = sim::kInvalidEventId;
    sim::EventId request_event = sim::kInvalidEventId;
  };

  /// One queued control message. Slots are recycled through
  /// free_message_slots_, so a steady-state connection sends without
  /// allocating: the delivery event's callback captures (this, slot) —
  /// 12 bytes, inside std::function's inline storage.
  struct PendingMessage {
    sim::EventId event = sim::kInvalidEventId;
    std::function<void()> on_delivered;
  };

  void start_response_flow();
  void schedule_ramp();
  void cancel_tracked_events();
  void finish_fetch(bool aborted, Bytes delivered);
  /// Fires a queued message: frees the slot, then runs its callback.
  void deliver_message(std::uint32_t slot);

  Network& net_;
  Rng& rng_;
  std::uint64_t id_ = 0;
  NodeId client_;
  NodeId server_;
  Duration one_way_;
  Duration rtt_;
  double loss_;
  State state_ = State::Fresh;
  CongestionWindow cwnd_;
  TimePoint last_activity_ = TimePoint::origin();
  std::optional<ActiveFetch> fetch_;
  sim::EventId connect_event_ = sim::kInvalidEventId;
  std::vector<PendingMessage> messages_;
  std::vector<std::uint32_t> free_message_slots_;
  /// Span context (see set_span_context); all zero when tracing is off
  /// or the connection carries no segment transfer.
  std::uint64_t span_parent_ = 0;
  std::uint64_t span_request_ = 0;
  std::uint64_t span_transfer_ = 0;
  std::int64_t span_segment_ = -1;
};

}  // namespace vsplice::net
