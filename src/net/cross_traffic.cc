#include "net/cross_traffic.h"

#include "common/error.h"

namespace vsplice::net {

CrossTraffic::CrossTraffic(Network& network, Rng& rng, NodeId src,
                           NodeId dst, Params params)
    : net_{network}, rng_{rng}, src_{src}, dst_{dst}, params_{params} {
  require(params.burst_size > 0, "cross traffic burst size must be > 0");
  require(params.mean_gap > Duration::zero(),
          "cross traffic mean gap must be > 0");
}

CrossTraffic::~CrossTraffic() { stop(); }

void CrossTraffic::start() {
  if (running_) return;
  running_ = true;
  schedule_next_burst();
}

void CrossTraffic::stop() {
  running_ = false;
  if (gap_event_ != sim::kInvalidEventId) {
    net_.simulator().cancel(gap_event_);
    gap_event_ = sim::kInvalidEventId;
  }
  if (active_flow_.valid() && net_.flow_active(active_flow_)) {
    net_.abort_flow(active_flow_);
  }
  active_flow_ = FlowId{};
}

void CrossTraffic::schedule_next_burst() {
  const Duration gap =
      Duration::seconds(rng_.exponential(params_.mean_gap.as_seconds()));
  gap_event_ = net_.simulator().after(gap, [this] {
    gap_event_ = sim::kInvalidEventId;
    launch_burst();
  });
}

void CrossTraffic::launch_burst() {
  FlowCallbacks callbacks;
  callbacks.on_complete = [this] {
    active_flow_ = FlowId{};
    ++bursts_completed_;
    bytes_transferred_ += params_.burst_size;
    if (running_) schedule_next_burst();
  };
  callbacks.on_abort = [this](Bytes delivered) {
    active_flow_ = FlowId{};
    bytes_transferred_ += delivered;
  };
  active_flow_ = net_.start_flow(src_, dst_, params_.burst_size,
                                 params_.burst_cap, std::move(callbacks));
}

}  // namespace vsplice::net
