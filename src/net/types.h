// Identifier types for the network layer.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace vsplice::net {

/// A host attached to the star topology.
struct NodeId {
  std::uint32_t value = 0;
  auto operator<=>(const NodeId&) const = default;
  [[nodiscard]] std::string to_string() const {
    return "node" + std::to_string(value);
  }
};

/// A directed link (one node's uplink or downlink, or the hub trunk).
struct LinkId {
  std::uint32_t value = 0;
  auto operator<=>(const LinkId&) const = default;
};

/// An active fluid flow.
struct FlowId {
  std::uint64_t value = 0;
  auto operator<=>(const FlowId&) const = default;
  [[nodiscard]] bool valid() const { return value != 0; }
};

}  // namespace vsplice::net

template <>
struct std::hash<vsplice::net::NodeId> {
  std::size_t operator()(const vsplice::net::NodeId& id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value);
  }
};

template <>
struct std::hash<vsplice::net::LinkId> {
  std::size_t operator()(const vsplice::net::LinkId& id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value);
  }
};

template <>
struct std::hash<vsplice::net::FlowId> {
  std::size_t operator()(const vsplice::net::FlowId& id) const noexcept {
    return std::hash<std::uint64_t>{}(id.value);
  }
};
