// Background cross-traffic generator (the paper's future-work item on
// "competing flows and high congestion environment").
//
// Emits an on/off sequence of bulk transfers between two hosts: a burst
// of `burst_size` bytes, then an exponential think time, then the next
// burst. Bursts share links max-min fairly with the swarm's flows, so
// enabling cross traffic squeezes streaming throughput exactly the way a
// competing TCP download would.
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "common/units.h"
#include "net/network.h"
#include "net/types.h"

namespace vsplice::net {

class CrossTraffic {
 public:
  struct Params {
    Bytes burst_size = 4_MiB;
    Duration mean_gap = Duration::seconds(2.0);
    /// Per-burst TCP-style rate cap; infinity = unconstrained.
    Rate burst_cap = Rate::infinity();
  };

  CrossTraffic(Network& network, Rng& rng, NodeId src, NodeId dst,
               Params params);
  CrossTraffic(const CrossTraffic&) = delete;
  CrossTraffic& operator=(const CrossTraffic&) = delete;
  ~CrossTraffic();

  void start();
  void stop();

  [[nodiscard]] bool running() const { return running_; }
  [[nodiscard]] std::uint64_t bursts_completed() const {
    return bursts_completed_;
  }
  [[nodiscard]] Bytes bytes_transferred() const {
    return bytes_transferred_;
  }

 private:
  void schedule_next_burst();
  void launch_burst();

  Network& net_;
  Rng& rng_;
  NodeId src_;
  NodeId dst_;
  Params params_;
  bool running_ = false;
  std::uint64_t bursts_completed_ = 0;
  Bytes bytes_transferred_ = 0;
  sim::EventId gap_event_ = sim::kInvalidEventId;
  FlowId active_flow_{};
};

}  // namespace vsplice::net
