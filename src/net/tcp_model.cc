#include "net/tcp_model.h"

#include <cmath>

#include "common/error.h"

namespace vsplice::net {

Rate mathis_ceiling(const TcpParams& params, Duration rtt, double loss) {
  require(rtt > Duration::zero(), "mathis_ceiling: rtt must be positive");
  require(loss >= 0.0 && loss < 1.0, "mathis_ceiling: loss must be in [0,1)");
  if (loss == 0.0) return Rate::infinity();
  const double bps = static_cast<double>(params.mss) *
                     params.mathis_constant /
                     (rtt.as_seconds() * std::sqrt(loss));
  return Rate::bytes_per_second(bps);
}

Rate slow_start_rate(const TcpParams& params, Duration rtt,
                     double rtts_elapsed) {
  require(rtt > Duration::zero(), "slow_start_rate: rtt must be positive");
  require(rtts_elapsed >= 0.0, "slow_start_rate: negative round trips");
  const double window_segments =
      static_cast<double>(params.initial_window_segments) *
      std::pow(params.slow_start_growth, rtts_elapsed);
  const double bps = window_segments * static_cast<double>(params.mss) /
                     rtt.as_seconds();
  return Rate::bytes_per_second(bps);
}

Duration handshake_delay(const TcpParams& params, Duration rtt, double loss,
                         Rng& rng) {
  // SYN and SYN-ACK each traverse the path once; each is retransmitted
  // after an RTO while lost.
  Duration total = rtt;
  for (int packet = 0; packet < 2; ++packet) {
    while (rng.bernoulli(loss)) total += params.retransmission_timeout;
  }
  return total;
}

Duration packet_delay(const TcpParams& params, Duration one_way_latency,
                      double loss, Rng& rng) {
  Duration total = one_way_latency;
  while (rng.bernoulli(loss)) total += params.retransmission_timeout;
  return total;
}

CongestionWindow::CongestionWindow(const TcpParams& params, Duration rtt,
                                   double loss)
    : params_{params},
      rtt_{rtt},
      ceiling_{mathis_ceiling(params, rtt, loss)},
      window_segments_{static_cast<double>(params.initial_window_segments)} {}

Rate CongestionWindow::rate() const {
  const Rate window_rate = Rate::bytes_per_second(
      window_segments_ * static_cast<double>(params_.mss) /
      rtt_.as_seconds());
  return std::min(window_rate, ceiling_);
}

void CongestionWindow::on_round_trip() {
  if (at_ceiling()) return;
  window_segments_ *= params_.slow_start_growth;
}

bool CongestionWindow::at_ceiling() const {
  const Rate window_rate = Rate::bytes_per_second(
      window_segments_ * static_cast<double>(params_.mss) /
      rtt_.as_seconds());
  return window_rate >= ceiling_;
}

void CongestionWindow::reset_after_idle() {
  window_segments_ = static_cast<double>(params_.initial_window_segments);
}

}  // namespace vsplice::net
