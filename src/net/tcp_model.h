// Flow-level TCP throughput model.
//
// The paper runs its swarm over Java sockets (real TCP) on GENI links with
// shaped bandwidth, 50/500 ms latency and 5 % loss. At flow level the three
// TCP effects that matter for its findings are:
//
//  1. connection setup cost — one RTT of 3-way handshake before the first
//     byte of the request can be sent, plus a retransmission timeout when
//     the SYN is lost (probability = loss rate, RTO 1 s per RFC 6298);
//  2. slow start — the congestion window starts at IW (10 segments,
//     RFC 6928) and doubles per RTT, so short transfers never reach the
//     link rate. This is why 2-second segments underperform 4-second
//     segments at low bandwidth in Fig. 2;
//  3. the loss-induced steady-state ceiling — the Mathis model
//     throughput <= MSS/RTT * C/sqrt(p), with C = sqrt(3/2). At the
//     paper's parameters (MSS 1460, RTT 100 ms, p 0.05) this is ~80 kB/s
//     per connection, *below* the paper's lowest link rate, which is why
//     downloading several segments in parallel (adaptive pooling)
//     improves utilization.
#pragma once

#include "common/rng.h"
#include "common/units.h"

namespace vsplice::net {

struct TcpParams {
  /// Maximum segment size (payload bytes per TCP segment).
  Bytes mss = 1460;
  /// Initial congestion window in segments (RFC 6928).
  int initial_window_segments = 10;
  /// Constant of the Mathis-form ceiling C*MSS/(RTT*sqrt(p)). The classic
  /// Reno derivation gives sqrt(3/2) ~ 1.22, but modern stacks (CUBIC +
  /// SACK, which the paper's Ubuntu/Java testbed ran) recover from random
  /// loss better than Reno AIMD; the default is calibrated so that a
  /// single connection at the paper's parameters (RTT 100 ms, p = 5%)
  /// tops out around 170 kB/s — above the video bitrate yet well below
  /// the faster link rates, preserving the findings the model must show:
  /// one connection can barely carry real-time video (so large segments
  /// ride a knife edge) and parallel fetches are what restore
  /// utilization on fast links (Section III).
  double mathis_constant = 2.6;
  /// Retransmission timeout applied when connection-setup or request
  /// packets are lost.
  Duration retransmission_timeout = Duration::seconds(1.0);
  /// Slow-start growth factor per RTT (2 = classic doubling).
  double slow_start_growth = 2.0;
  /// Goodput degradation per *additional* concurrent connection sharing
  /// a receiver's shaped access link: n parallel downloads deliver only
  /// capacity / (1 + f*(n-1)) in aggregate. Models the retransmission
  /// and timeout overhead of parallel TCP fighting over one token-bucket
  /// queue under loss — the paper's "a large pool size increases the
  /// network overload in the peer's network" (Section VI-B). Off by
  /// default (ideal fluid sharing); the pooling ablation enables it.
  double parallel_loss_factor = 0.0;
};

/// Steady-state throughput ceiling of one TCP connection under random
/// loss `p` on a path with round-trip time `rtt` (Mathis et al., 1997).
/// Infinite when p == 0.
[[nodiscard]] Rate mathis_ceiling(const TcpParams& params, Duration rtt,
                                  double loss);

/// The congestion-window-limited rate after `rtts_elapsed` round trips of
/// slow start: IW * growth^rtts * MSS / RTT.
[[nodiscard]] Rate slow_start_rate(const TcpParams& params, Duration rtt,
                                   double rtts_elapsed);

/// Time for the 3-way handshake: one RTT plus a retransmission timeout
/// for every lost SYN/SYN-ACK (geometric in the loss rate, drawn from
/// `rng`).
[[nodiscard]] Duration handshake_delay(const TcpParams& params, Duration rtt,
                                       double loss, Rng& rng);

/// Delivery delay of one small control packet over the path: one-way
/// latency plus retransmission timeouts for losses.
[[nodiscard]] Duration packet_delay(const TcpParams& params,
                                    Duration one_way_latency, double loss,
                                    Rng& rng);

/// Models one TCP connection's congestion window evolution at RTT
/// granularity. The Connection layer samples this to derive the rate cap
/// it installs on its fluid flow.
class CongestionWindow {
 public:
  CongestionWindow(const TcpParams& params, Duration rtt, double loss);

  /// Current window-limited rate (cwnd/RTT), already clipped to the
  /// Mathis ceiling.
  [[nodiscard]] Rate rate() const;

  /// Advance one RTT of slow start.
  void on_round_trip();

  /// True once the window has reached the loss ceiling; the rate cap no
  /// longer changes and the ramp timer can stop.
  [[nodiscard]] bool at_ceiling() const;

  /// After an idle period longer than the RTO, TCP restarts from the
  /// initial window (RFC 2581 congestion window validation).
  void reset_after_idle();

  [[nodiscard]] Duration rtt() const { return rtt_; }

 private:
  TcpParams params_;
  Duration rtt_;
  Rate ceiling_;
  double window_segments_;
};

}  // namespace vsplice::net
