#include "net/network.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/log.h"
#include "obs/metrics.h"
#include "obs/profiler.h"

namespace vsplice::net {

namespace {
// A flow is done when less than this many bytes remain; absorbs the
// microsecond rounding of completion times.
constexpr double kDoneTolerance = 1e-3;

// Flow lifetime/size distributions for the metrics registry.
constexpr obs::HistogramSpec kFlowSecondsSpec{0.0, 1.0, 120};
constexpr obs::HistogramSpec kFlowKilobytesSpec{0.0, 50.0, 100};
}  // namespace

Network::Network(sim::Simulator& sim, TcpParams tcp)
    : sim_{sim}, tcp_{tcp} {
  // Link 0 is the hub trunk; infinite = non-blocking switch.
  link_capacity_.push_back(Rate::infinity());
}

NodeId Network::add_node(const NodeSpec& spec) {
  require(spec.loss >= 0.0 && spec.loss < 1.0,
          "node loss must be in [0, 1)");
  require(!spec.one_way_delay.is_negative(),
          "node delay must be non-negative");
  const NodeId id{static_cast<std::uint32_t>(nodes_.size())};
  nodes_.push_back(spec);
  link_capacity_.push_back(spec.uplink);
  link_capacity_.push_back(spec.downlink);
  uploaded_.push_back(0.0);
  downloaded_.push_back(0.0);
  return id;
}

namespace {
/// Out-of-line failure path: these accessors run on every flow update
/// and message send, so the passing path must not format the id.
[[noreturn]] void throw_unknown_node(NodeId id) {
  throw InvalidArgument{"unknown node " + id.to_string()};
}
}  // namespace

const NodeSpec& Network::node(NodeId id) const {
  if (id.value >= nodes_.size()) throw_unknown_node(id);
  return nodes_[id.value];
}

LinkId Network::uplink_of(NodeId id) const {
  if (id.value >= nodes_.size()) throw_unknown_node(id);
  return LinkId{1 + 2 * id.value};
}

LinkId Network::downlink_of(NodeId id) const {
  if (id.value >= nodes_.size()) throw_unknown_node(id);
  return LinkId{2 + 2 * id.value};
}

void Network::set_hub_capacity(Rate capacity) {
  require(capacity >= Rate::zero(), "hub capacity must be non-negative");
  advance_progress();
  link_capacity_[0] = capacity;
  reallocate();
}

void Network::set_node_bandwidth(NodeId id, Rate uplink, Rate downlink) {
  require(uplink >= Rate::zero() && downlink >= Rate::zero(),
          "bandwidth must be non-negative");
  advance_progress();
  nodes_[id.value].uplink = uplink;
  nodes_[id.value].downlink = downlink;
  link_capacity_[uplink_of(id).value] = uplink;
  link_capacity_[downlink_of(id).value] = downlink;
  reallocate();
}

Duration Network::one_way_delay(NodeId a, NodeId b) const {
  return node(a).one_way_delay + node(b).one_way_delay;
}

Duration Network::rtt(NodeId a, NodeId b) const {
  return one_way_delay(a, b) * 2.0;
}

double Network::path_loss(NodeId a, NodeId b) const {
  return 1.0 - (1.0 - node(a).loss) * (1.0 - node(b).loss);
}

FlowId Network::start_flow(NodeId src, NodeId dst, Bytes size, Rate cap,
                           FlowCallbacks callbacks) {
  require(src != dst, "flow endpoints must differ");
  require(size >= 0, "flow size must be non-negative");
  require(static_cast<bool>(callbacks.on_complete),
          "flow needs an on_complete callback");
  (void)node(src);
  (void)node(dst);

  const FlowId id{next_flow_++};
  ++stats_.flows_started;
  obs::count("net.flows_started");

  advance_progress();
  Flow flow;
  flow.src = src;
  flow.dst = dst;
  flow.started = sim_.now();
  flow.total = static_cast<double>(size);
  flow.remaining = static_cast<double>(size);
  flow.cap = cap;
  flow.callbacks = std::move(callbacks);
  flows_.emplace(id, std::move(flow));
  reallocate();
  return id;
}

void Network::set_flow_cap(FlowId id, Rate cap) {
  const auto it = flows_.find(id);
  if (it == flows_.end()) return;
  advance_progress();
  it->second.cap = cap;
  reallocate();
}

Network::AbortedFlow Network::remove_aborted(
    std::map<FlowId, Flow>::iterator it) {
  Flow flow = std::move(it->second);
  if (flow.completion_event != sim::kInvalidEventId)
    sim_.cancel(flow.completion_event);
  flows_.erase(it);
  ++stats_.flows_aborted;
  obs::count("net.flows_aborted");
  const double delivered = std::max(0.0, flow.total - flow.remaining);
  obs::count("net.bytes_wasted", static_cast<std::uint64_t>(delivered));
  return AbortedFlow{std::move(flow.callbacks),
                     static_cast<Bytes>(delivered)};
}

bool Network::abort_flow(FlowId id) {
  const auto it = flows_.find(id);
  if (it == flows_.end()) return false;
  advance_progress();
  AbortedFlow aborted = remove_aborted(it);
  // Rates are recomputed before the callback runs: on_abort must never
  // observe the departed flow's share still allocated to nobody.
  reallocate();
  if (aborted.callbacks.on_abort) aborted.callbacks.on_abort(aborted.delivered);
  return true;
}

void Network::abort_flows_for(NodeId nodeid) {
  advance_progress();
  // Remove every matching flow first, then reallocate ONCE; the owed
  // callbacks run last (in FlowId order) against the updated table.
  std::vector<AbortedFlow> aborted;
  for (auto it = flows_.begin(); it != flows_.end();) {
    if (it->second.src == nodeid || it->second.dst == nodeid) {
      aborted.push_back(remove_aborted(it++));
    } else {
      ++it;
    }
  }
  if (aborted.empty()) return;
  reallocate();
  for (AbortedFlow& flow : aborted) {
    if (flow.callbacks.on_abort) flow.callbacks.on_abort(flow.delivered);
  }
}

bool Network::flow_active(FlowId id) const { return flows_.contains(id); }

Rate Network::flow_rate(FlowId id) const {
  const auto it = flows_.find(id);
  return it == flows_.end() ? Rate::zero() : it->second.rate;
}

Bytes Network::flow_remaining(FlowId id) const {
  const auto it = flows_.find(id);
  if (it == flows_.end()) return 0;
  return static_cast<Bytes>(std::max(0.0, it->second.remaining));
}

Bytes Network::uploaded_by(NodeId id) const {
  require(id.value < uploaded_.size(), "unknown node");
  return static_cast<Bytes>(uploaded_[id.value]);
}

Bytes Network::downloaded_by(NodeId id) const {
  require(id.value < downloaded_.size(), "unknown node");
  return static_cast<Bytes>(downloaded_[id.value]);
}

void Network::credit_transfer(const Flow& flow, double bytes) {
  uploaded_[flow.src.value] += bytes;
  downloaded_[flow.dst.value] += bytes;
  stats_.bytes_delivered += bytes;
}

void Network::advance_progress() {
  const TimePoint now = sim_.now();
  const Duration dt = now - last_update_;
  last_update_ = now;
  if (dt.is_zero() || flows_.empty()) return;
  sim::TaskPool* pool = sim_.task_pool();
  if (pool != nullptr && pool->lanes() > 1 &&
      flows_.size() >= StarAllocator::kParallelFlows) {
    // Sharded integration (DESIGN.md §14): each flow's byte movement —
    // and its own `remaining`, per-flow state — is computed in parallel
    // over a deterministic partition; the cross-flow accumulators
    // (uploaded_/downloaded_/bytes_delivered) are then credited serially
    // in FlowId order, reproducing the serial loop's floating-point
    // accumulation order exactly.
    scratch_progress_.clear();
    for (auto& [id, flow] : flows_) scratch_progress_.push_back(&flow);
    const std::size_t count = scratch_progress_.size();
    scratch_moved_.resize(count);
    const double seconds = dt.as_seconds();
    pool->parallel_for(
        count, [&](std::size_t, std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) {
            Flow& flow = *scratch_progress_[i];
            if (flow.rate.is_zero()) continue;
            const double moved = std::min(
                flow.remaining, flow.rate.bytes_per_second() * seconds);
            flow.remaining -= moved;
            scratch_moved_[i] = moved;
          }
        });
    for (std::size_t i = 0; i < count; ++i) {
      const Flow& flow = *scratch_progress_[i];
      if (flow.rate.is_zero()) continue;
      credit_transfer(flow, scratch_moved_[i]);
    }
    return;
  }
  for (auto& [id, flow] : flows_) {
    if (flow.rate.is_zero()) continue;
    const double moved = std::min(
        flow.remaining, flow.rate.bytes_per_second() * dt.as_seconds());
    flow.remaining -= moved;
    credit_transfer(flow, moved);
  }
}

void Network::compute_effective_capacities() {
  scratch_capacity_.assign(link_capacity_.begin(), link_capacity_.end());
  if (tcp_.parallel_loss_factor <= 0.0 || flows_.empty()) return;
  // Count concurrent flows per downlink (link ids 2, 4, 6, ... — the
  // receiver side, where a streaming client's parallel downloads pile
  // up) and derate the aggregate goodput accordingly.
  downlink_flows_.assign(link_capacity_.size(), 0);
  for (const auto& [id, flow] : flows_) {
    ++downlink_flows_[downlink_of(flow.dst).value];
  }
  for (std::size_t l = 2; l < downlink_flows_.size(); l += 2) {
    const std::uint32_t n = downlink_flows_[l];
    if (n <= 1 || scratch_capacity_[l].is_infinite()) continue;
    const double factor =
        1.0 + tcp_.parallel_loss_factor * static_cast<double>(n - 1);
    scratch_capacity_[l] = scratch_capacity_[l] / factor;
  }
}

void Network::reallocate() {
  VSPLICE_PROFILE_SCOPE("net.reallocate");
  check_invariant(!in_reallocate_, "reallocate is not reentrant");
  in_reallocate_ = true;
  ++stats_.reallocations;

  compute_effective_capacities();

  scratch_specs_.clear();
  scratch_flows_.clear();
  for (auto& [id, flow] : flows_) {  // FlowId order: map is sorted
    scratch_specs_.push_back(StarFlowSpec{uplink_of(flow.src).value,
                                          downlink_of(flow.dst).value,
                                          flow.cap});
    scratch_flows_.emplace_back(id, &flow);
  }
  // The simulator's worker pool (if any) is idle between barrier windows,
  // so the allocator may borrow it to shard its per-round scans.
  allocator_.set_task_pool(sim_.task_pool());
  allocator_.allocate(scratch_specs_, scratch_capacity_, scratch_rates_);

  for (std::size_t i = 0; i < scratch_flows_.size(); ++i) {
    Flow& flow = *scratch_flows_[i].second;
    const Rate new_rate = scratch_rates_[i];
    // A completion event stays valid while the rate it was derived from
    // holds: the event time is absolute, and progress accrues at exactly
    // that rate until the next reallocation. Only a rate change (or a
    // flow that needs an event and has none) forces a reschedule.
    const bool needs_event =
        flow.completion_event == sim::kInvalidEventId &&
        (flow.remaining <= kDoneTolerance || !new_rate.is_zero());
    if (new_rate != flow.rate || needs_event) {
      flow.rate = new_rate;
      schedule_completion(scratch_flows_[i].first, flow);
    }
  }
  in_reallocate_ = false;
}

void Network::schedule_completion(FlowId id, Flow& flow) {
  if (flow.completion_event != sim::kInvalidEventId) {
    sim_.cancel(flow.completion_event);
    flow.completion_event = sim::kInvalidEventId;
  }
  ++stats_.completion_reschedules;
  if (flow.remaining <= kDoneTolerance) {
    // Zero-length (or already-drained) flow: complete on the next tick so
    // callers never see a completion inside start_flow.
    flow.completion_event =
        sim_.after(Duration::zero(), [this, id] { finish_flow(id); });
    return;
  }
  if (flow.rate.is_zero()) return;  // stalled; a future reallocation wakes it
  if (flow.rate.is_infinite()) {
    flow.completion_event =
        sim_.after(Duration::zero(), [this, id] { finish_flow(id); });
    return;
  }
  // Exact fractional ETA, rounded up to the next microsecond: after the
  // wait the flow has moved at least `remaining` bytes. (Rounding the
  // *bytes* up instead — the old std::ceil(remaining) — overshot the
  // completion time by up to one byte-time per reschedule.)
  const double seconds = flow.remaining / flow.rate.bytes_per_second();
  const Duration eta = Duration::micros(
      static_cast<std::int64_t>(std::ceil(seconds * 1e6)));
  flow.completion_event =
      sim_.after(eta, [this, id] { finish_flow(id); });
}

std::uint64_t Network::register_connection(Connection* conn) {
  const std::uint64_t id = next_connection_id_++;
  connections_.push_back(conn);
  return id;
}

void Network::unregister_connection(std::uint64_t id) {
  connections_[id - 1] = nullptr;
}

Connection* Network::find_connection(std::uint64_t id) const {
  if (id == 0 || id > connections_.size()) return nullptr;
  return connections_[id - 1];
}

void Network::finish_flow(FlowId id) {
  advance_progress();
  const auto it = flows_.find(id);
  check_invariant(it != flows_.end(), "completion event for unknown flow");
  Flow& flow = it->second;
  flow.completion_event = sim::kInvalidEventId;
  if (flow.remaining > kDoneTolerance) {
    // Rates changed since this event was scheduled; re-derive the ETA.
    schedule_completion(id, flow);
    return;
  }
  Flow done = std::move(flow);
  flows_.erase(it);
  ++stats_.flows_completed;
  obs::count("net.flows_completed");
  obs::count("net.bytes_delivered",
             static_cast<std::uint64_t>(done.total));
  obs::observe("net.flow_duration_s",
               (sim_.now() - done.started).as_seconds(), kFlowSecondsSpec);
  obs::observe("net.flow_kilobytes", done.total / 1000.0,
               kFlowKilobytesSpec);
  // Rates are recomputed before the callback runs: on_complete must
  // never observe the finished flow's share still assigned.
  reallocate();
  done.callbacks.on_complete();
}

}  // namespace vsplice::net
