#include "net/network.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/log.h"
#include "obs/metrics.h"
#include "obs/profiler.h"

namespace vsplice::net {

namespace {
// A flow is done when less than this many bytes remain; absorbs the
// microsecond rounding of completion times.
constexpr double kDoneTolerance = 1e-3;

// Flow lifetime/size distributions for the metrics registry.
constexpr obs::HistogramSpec kFlowSecondsSpec{0.0, 1.0, 120};
constexpr obs::HistogramSpec kFlowKilobytesSpec{0.0, 50.0, 100};
}  // namespace

Network::Network(sim::Simulator& sim, TcpParams tcp)
    : sim_{sim}, tcp_{tcp} {
  // Link 0 is the hub trunk; infinite = non-blocking switch.
  link_capacity_.push_back(Rate::infinity());
  effective_capacity_.push_back(Rate::infinity());
  link_flows_.emplace_back();
  link_mark_.push_back(0);
  link_remap_mark_.push_back(0);
  link_compact_.push_back(0);
}

NodeId Network::add_node(const NodeSpec& spec) {
  require(spec.loss >= 0.0 && spec.loss < 1.0,
          "node loss must be in [0, 1)");
  require(!spec.one_way_delay.is_negative(),
          "node delay must be non-negative");
  const NodeId id{static_cast<std::uint32_t>(nodes_.size())};
  nodes_.push_back(spec);
  for (const Rate capacity : {spec.uplink, spec.downlink}) {
    link_capacity_.push_back(capacity);
    effective_capacity_.push_back(capacity);
    link_flows_.emplace_back();
    link_mark_.push_back(0);
    link_remap_mark_.push_back(0);
    link_compact_.push_back(0);
  }
  uploaded_.push_back(0.0);
  downloaded_.push_back(0.0);
  return id;
}

namespace {
/// Out-of-line failure path: these accessors run on every flow update
/// and message send, so the passing path must not format the id.
[[noreturn]] void throw_unknown_node(NodeId id) {
  throw InvalidArgument{"unknown node " + id.to_string()};
}
}  // namespace

const NodeSpec& Network::node(NodeId id) const {
  if (id.value >= nodes_.size()) throw_unknown_node(id);
  return nodes_[id.value];
}

LinkId Network::uplink_of(NodeId id) const {
  if (id.value >= nodes_.size()) throw_unknown_node(id);
  return LinkId{1 + 2 * id.value};
}

LinkId Network::downlink_of(NodeId id) const {
  if (id.value >= nodes_.size()) throw_unknown_node(id);
  return LinkId{2 + 2 * id.value};
}

Rate Network::derated_capacity(LinkId link, std::size_t flows) const {
  const Rate raw = link_capacity_[link.value];
  if (tcp_.parallel_loss_factor <= 0.0 || flows <= 1 || raw.is_infinite())
    return raw;
  const double factor =
      1.0 + tcp_.parallel_loss_factor * static_cast<double>(flows - 1);
  return raw / factor;
}

void Network::set_hub_capacity(Rate capacity) {
  require(capacity >= Rate::zero(), "hub capacity must be non-negative");
  link_capacity_[0] = capacity;
  effective_capacity_[0] = capacity;
  // The old constraint may have throttled any flow (and while finite,
  // the trunk couples every flow into one component anyway): rescan all.
  pending_full_ = true;
  reallocate();
}

void Network::set_node_bandwidth(NodeId id, Rate uplink, Rate downlink) {
  require(uplink >= Rate::zero() && downlink >= Rate::zero(),
          "bandwidth must be non-negative");
  nodes_[id.value].uplink = uplink;
  nodes_[id.value].downlink = downlink;
  const LinkId up = uplink_of(id);
  const LinkId down = downlink_of(id);
  link_capacity_[up.value] = uplink;
  link_capacity_[down.value] = downlink;
  effective_capacity_[up.value] = uplink;  // uplinks are never derated
  effective_capacity_[down.value] =
      derated_capacity(down, link_flows_[down.value].size());
  // Capacity changed: flows on these links must be recomputed even if
  // the new capacity is infinite (the old one may have throttled them).
  seed_force_links_.push_back(up.value);
  seed_force_links_.push_back(down.value);
  reallocate();
}

Duration Network::one_way_delay(NodeId a, NodeId b) const {
  return node(a).one_way_delay + node(b).one_way_delay;
}

Duration Network::rtt(NodeId a, NodeId b) const {
  return one_way_delay(a, b) * 2.0;
}

double Network::path_loss(NodeId a, NodeId b) const {
  return 1.0 - (1.0 - node(a).loss) * (1.0 - node(b).loss);
}

void Network::link_flow(FlowId id, Flow& flow) {
  const LinkId up = uplink_of(flow.src);
  const LinkId down = downlink_of(flow.dst);
  auto& up_list = link_flows_[up.value];
  flow.up_pos = static_cast<std::uint32_t>(up_list.size());
  up_list.emplace_back(id, &flow);
  auto& down_list = link_flows_[down.value];
  flow.down_pos = static_cast<std::uint32_t>(down_list.size());
  down_list.emplace_back(id, &flow);
  effective_capacity_[down.value] =
      derated_capacity(down, down_list.size());
  seed_links_.push_back(up.value);
  seed_links_.push_back(down.value);
}

void Network::unlink_flow(Flow& flow) {
  const LinkId up = uplink_of(flow.src);
  const LinkId down = downlink_of(flow.dst);
  auto& up_list = link_flows_[up.value];
  up_list[flow.up_pos] = up_list.back();
  up_list.pop_back();
  if (flow.up_pos < up_list.size())
    up_list[flow.up_pos].second->up_pos = flow.up_pos;
  auto& down_list = link_flows_[down.value];
  down_list[flow.down_pos] = down_list.back();
  down_list.pop_back();
  if (flow.down_pos < down_list.size())
    down_list[flow.down_pos].second->down_pos = flow.down_pos;
  effective_capacity_[down.value] =
      derated_capacity(down, down_list.size());
  seed_links_.push_back(up.value);
  seed_links_.push_back(down.value);
}

FlowId Network::start_flow(NodeId src, NodeId dst, Bytes size, Rate cap,
                           FlowCallbacks callbacks) {
  require(src != dst, "flow endpoints must differ");
  require(size >= 0, "flow size must be non-negative");
  require(static_cast<bool>(callbacks.on_complete),
          "flow needs an on_complete callback");
  (void)node(src);
  (void)node(dst);

  const FlowId id{next_flow_++};
  ++stats_.flows_started;
  obs::count("net.flows_started");

  Flow flow;
  flow.src = src;
  flow.dst = dst;
  flow.started = sim_.now();
  flow.last_advanced = sim_.now();
  flow.total = static_cast<double>(size);
  flow.remaining = static_cast<double>(size);
  flow.cap = cap;
  flow.callbacks = std::move(callbacks);
  const auto [it, inserted] = flows_.emplace(id, std::move(flow));
  link_flow(id, it->second);
  seed_flows_.push_back(id);
  reallocate();
  return id;
}

void Network::set_flow_cap(FlowId id, Rate cap) {
  const auto it = flows_.find(id);
  if (it == flows_.end()) return;
  it->second.cap = cap;
  // The flow itself is always in the component (its links may both be
  // infinite, in which case nobody else is affected).
  seed_flows_.push_back(id);
  reallocate();
}

Network::AbortedFlow Network::remove_aborted(
    std::map<FlowId, Flow>::iterator it) {
  settle_flow(it->second);
  unlink_flow(it->second);
  Flow flow = std::move(it->second);
  if (flow.completion_event != sim::kInvalidEventId)
    sim_.cancel(flow.completion_event);
  flows_.erase(it);
  ++stats_.flows_aborted;
  obs::count("net.flows_aborted");
  const double delivered = std::max(0.0, flow.total - flow.remaining);
  obs::count("net.bytes_wasted", static_cast<std::uint64_t>(delivered));
  return AbortedFlow{std::move(flow.callbacks),
                     static_cast<Bytes>(delivered)};
}

bool Network::abort_flow(FlowId id) {
  const auto it = flows_.find(id);
  if (it == flows_.end()) return false;
  AbortedFlow aborted = remove_aborted(it);
  // Rates are recomputed before the callback runs: on_abort must never
  // observe the departed flow's share still allocated to nobody.
  reallocate();
  if (aborted.callbacks.on_abort) aborted.callbacks.on_abort(aborted.delivered);
  return true;
}

void Network::abort_flows_for(NodeId nodeid) {
  // Remove every matching flow first, then reallocate ONCE; the owed
  // callbacks run last (in FlowId order) against the updated table.
  std::vector<AbortedFlow> aborted;
  for (auto it = flows_.begin(); it != flows_.end();) {
    if (it->second.src == nodeid || it->second.dst == nodeid) {
      aborted.push_back(remove_aborted(it++));
    } else {
      ++it;
    }
  }
  if (aborted.empty()) return;
  reallocate();
  for (AbortedFlow& flow : aborted) {
    if (flow.callbacks.on_abort) flow.callbacks.on_abort(flow.delivered);
  }
}

bool Network::flow_active(FlowId id) const { return flows_.contains(id); }

Rate Network::flow_rate(FlowId id) const {
  const auto it = flows_.find(id);
  return it == flows_.end() ? Rate::zero() : it->second.rate;
}

Bytes Network::flow_remaining(FlowId id) const {
  const auto it = flows_.find(id);
  if (it == flows_.end()) return 0;
  const Flow& flow = it->second;
  return static_cast<Bytes>(
      std::max(0.0, flow.remaining - accrued_bytes(flow)));
}

double Network::accrued_bytes(const Flow& flow) const {
  if (flow.rate.is_zero()) return 0.0;
  // An infinite rate delivers everything the instant it is granted —
  // even at dt = 0, or the zero-delay completion event would find the
  // bytes still in flight and reschedule itself forever.
  if (flow.rate.is_infinite()) return flow.remaining;
  const Duration dt = sim_.now() - flow.last_advanced;
  if (dt.is_zero()) return 0.0;
  return std::min(flow.remaining,
                  flow.rate.bytes_per_second() * dt.as_seconds());
}

double Network::accrued_on_link(LinkId link) const {
  const auto& list = link_flows_[link.value];
  if (list.empty()) return 0.0;
  // Sum in FlowId order: the per-link index is swap-remove-unordered,
  // and the accumulation order must not depend on it.
  query_scratch_.clear();
  for (const auto& [id, flow] : list) query_scratch_.emplace_back(id, flow);
  std::sort(query_scratch_.begin(), query_scratch_.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  double sum = 0.0;
  for (const auto& [id, flow] : query_scratch_) sum += accrued_bytes(*flow);
  return sum;
}

Bytes Network::uploaded_by(NodeId id) const {
  require(id.value < uploaded_.size(), "unknown node");
  return static_cast<Bytes>(uploaded_[id.value] +
                            accrued_on_link(uplink_of(id)));
}

Bytes Network::downloaded_by(NodeId id) const {
  require(id.value < downloaded_.size(), "unknown node");
  return static_cast<Bytes>(downloaded_[id.value] +
                            accrued_on_link(downlink_of(id)));
}

double Network::bytes_delivered() const {
  double total = stats_.bytes_delivered;
  for (const auto& [id, flow] : flows_) total += accrued_bytes(flow);
  return total;
}

void Network::credit_transfer(const Flow& flow, double bytes) {
  uploaded_[flow.src.value] += bytes;
  downloaded_[flow.dst.value] += bytes;
  stats_.bytes_delivered += bytes;
}

void Network::settle_flow(Flow& flow) {
  const TimePoint now = sim_.now();
  const Duration dt = now - flow.last_advanced;
  flow.last_advanced = now;
  if (flow.rate.is_zero()) return;
  double moved;
  if (flow.rate.is_infinite()) {
    // Mirrors accrued_bytes: delivered the instant the rate was
    // granted, even when no simulated time has passed since.
    moved = flow.remaining;
  } else {
    if (dt.is_zero()) return;
    moved = std::min(flow.remaining,
                     flow.rate.bytes_per_second() * dt.as_seconds());
  }
  if (moved == 0.0) return;
  flow.remaining -= moved;
  credit_transfer(flow, moved);
  ++stats_.flows_settled;
}

void Network::compute_effective_capacities() {
  scratch_capacity_.assign(link_capacity_.begin(), link_capacity_.end());
  if (tcp_.parallel_loss_factor <= 0.0 || flows_.empty()) return;
  // Count concurrent flows per downlink (link ids 2, 4, 6, ... — the
  // receiver side, where a streaming client's parallel downloads pile
  // up) and derate the aggregate goodput accordingly.
  downlink_flows_.assign(link_capacity_.size(), 0);
  for (const auto& [id, flow] : flows_) {
    ++downlink_flows_[downlink_of(flow.dst).value];
  }
  for (std::size_t l = 2; l < downlink_flows_.size(); l += 2) {
    const std::uint32_t n = downlink_flows_[l];
    if (n <= 1 || scratch_capacity_[l].is_infinite()) continue;
    const double factor =
        1.0 + tcp_.parallel_loss_factor * static_cast<double>(n - 1);
    scratch_capacity_[l] = scratch_capacity_[l] / factor;
  }
}

void Network::reallocate() {
  VSPLICE_PROFILE_SCOPE("net.reallocate");
  check_invariant(!in_reallocate_, "reallocate is not reentrant");
  in_reallocate_ = true;
  ++stats_.reallocations;
  stats_.flows_active_integral += flows_.size();

  // A finite hub trunk couples every flow into one component, so the
  // scoped walk would visit everything anyway: force the full path in
  // BOTH modes (this keeps the diagnostic counters mode-independent).
  const bool forced_full =
      pending_full_ || !effective_capacity_[0].is_infinite();
  pending_full_ = false;

  scratch_specs_.clear();
  scratch_flows_.clear();
  bool solved = false;  // a compact subproblem was already allocated
  if (!forced_full) {
    ++stats_.reallocations_scoped;
    // Dirty-set closure (DESIGN.md §16): flows couple only through
    // finite-capacity links, so walk link -> flows -> other links,
    // expanding finite links (plus the force-seeded ones whose raw
    // capacity just changed) until the component is closed.
    const std::uint64_t epoch = ++component_epoch_;
    link_stack_.clear();
    const auto couples = [&](std::uint32_t l) {
      return !effective_capacity_[l].is_infinite();
    };
    const auto push_link = [&](std::uint32_t l) {
      if (link_mark_[l] == epoch) return;
      link_mark_[l] = epoch;
      link_stack_.push_back(l);
    };
    const auto add_flow = [&](FlowId id, Flow* flow) {
      if (flow->mark == epoch) return;
      flow->mark = epoch;
      scratch_flows_.emplace_back(id, flow);
      const std::uint32_t up = uplink_of(flow->src).value;
      const std::uint32_t down = downlink_of(flow->dst).value;
      if (couples(up)) push_link(up);
      if (couples(down)) push_link(down);
    };
    for (const std::uint32_t l : seed_force_links_) push_link(l);
    for (const std::uint32_t l : seed_links_)
      if (couples(l)) push_link(l);
    seed_force_links_.clear();
    seed_links_.clear();
    for (const FlowId id : seed_flows_) {
      const auto it = flows_.find(id);
      if (it != flows_.end()) add_flow(id, &it->second);
    }
    seed_flows_.clear();
    while (!link_stack_.empty()) {
      const std::uint32_t l = link_stack_.back();
      link_stack_.pop_back();
      for (const auto& [id, flow] : link_flows_[l]) add_flow(id, flow);
    }
    // The allocator iterates flows in index order when fixing rates;
    // sort so that order is FlowId order, exactly like the full path.
    std::sort(scratch_flows_.begin(), scratch_flows_.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    stats_.flows_retouched += scratch_flows_.size();
    if (!full_reallocation_) {
      if (!scratch_flows_.empty()) {
        // Compact subproblem: remap the component's links to dense ids
        // (hub stays 0) and allocate over those alone. Link order is
        // irrelevant to the result — per-round levels are value-mins and
        // the fix order is the (sorted) flow order.
        scratch_capacity_.clear();
        scratch_capacity_.push_back(effective_capacity_[0]);
        const auto compact_of = [&](std::uint32_t l) {
          if (link_remap_mark_[l] != epoch) {
            link_remap_mark_[l] = epoch;
            link_compact_[l] =
                static_cast<std::uint32_t>(scratch_capacity_.size());
            scratch_capacity_.push_back(effective_capacity_[l]);
          }
          return link_compact_[l];
        };
        for (const auto& [id, flow] : scratch_flows_) {
          scratch_specs_.push_back(
              StarFlowSpec{compact_of(uplink_of(flow->src).value),
                           compact_of(downlink_of(flow->dst).value),
                           flow->cap});
        }
        // The simulator's worker pool (if any) is idle between barrier
        // windows, so the allocator may borrow it for its per-round scans.
        allocator_.set_task_pool(sim_.task_pool());
        allocator_.allocate(scratch_specs_, scratch_capacity_,
                            scratch_rates_);
      }
      solved = true;
    } else {
      // Oracle mode: the dirty-set walk above ran for its counters only
      // — flipping VSPLICE_FULL_REALLOC on must change nothing
      // observable but wall time. Discard the component and rescan.
      scratch_flows_.clear();
    }
  } else {
    seed_links_.clear();
    seed_force_links_.clear();
    seed_flows_.clear();
    stats_.flows_retouched += flows_.size();
  }
  if (!solved) {
    // Independent recomputation of the derated capacities — the scoped
    // path's incrementally-maintained effective_capacity_ must agree
    // (the differential suite compares the resulting rates).
    compute_effective_capacities();
    for (auto& [id, flow] : flows_) {  // FlowId order: map is sorted
      scratch_specs_.push_back(StarFlowSpec{uplink_of(flow.src).value,
                                            downlink_of(flow.dst).value,
                                            flow.cap});
      scratch_flows_.emplace_back(id, &flow);
    }
    allocator_.set_task_pool(sim_.task_pool());
    allocator_.allocate(scratch_specs_, scratch_capacity_, scratch_rates_);
  }

  for (std::size_t i = 0; i < scratch_flows_.size(); ++i) {
    Flow& flow = *scratch_flows_[i].second;
    const Rate new_rate = scratch_rates_[i];
    // A completion event stays valid while the rate it was derived from
    // holds: the event time is absolute, and progress accrues at exactly
    // that rate until the next reallocation. Only a rate change (or a
    // flow that needs an event and has none) forces a reschedule — and
    // only then does the flow settle, so both reallocation modes settle
    // the same flows at the same events in the same (FlowId) order.
    const bool needs_event =
        flow.completion_event == sim::kInvalidEventId &&
        (flow.remaining <= kDoneTolerance || !new_rate.is_zero());
    if (new_rate != flow.rate || needs_event) {
      settle_flow(flow);
      flow.rate = new_rate;
      schedule_completion(scratch_flows_[i].first, flow);
    }
  }
  in_reallocate_ = false;
}

void Network::schedule_completion(FlowId id, Flow& flow) {
  if (flow.completion_event != sim::kInvalidEventId) {
    sim_.cancel(flow.completion_event);
    flow.completion_event = sim::kInvalidEventId;
  }
  ++stats_.completion_reschedules;
  if (flow.remaining <= kDoneTolerance) {
    // Zero-length (or already-drained) flow: complete on the next tick so
    // callers never see a completion inside start_flow.
    flow.completion_event =
        sim_.after(Duration::zero(), [this, id] { finish_flow(id); });
    return;
  }
  if (flow.rate.is_zero()) return;  // stalled; a future reallocation wakes it
  if (flow.rate.is_infinite()) {
    flow.completion_event =
        sim_.after(Duration::zero(), [this, id] { finish_flow(id); });
    return;
  }
  // Exact fractional ETA, rounded up to the next microsecond: after the
  // wait the flow has moved at least `remaining` bytes. (Rounding the
  // *bytes* up instead — the old std::ceil(remaining) — overshot the
  // completion time by up to one byte-time per reschedule.)
  const double seconds = flow.remaining / flow.rate.bytes_per_second();
  const Duration eta = Duration::micros(
      static_cast<std::int64_t>(std::ceil(seconds * 1e6)));
  flow.completion_event =
      sim_.after(eta, [this, id] { finish_flow(id); });
}

std::uint64_t Network::register_connection(Connection* conn) {
  std::uint32_t slot;
  if (!free_connection_slots_.empty()) {
    slot = free_connection_slots_.back();
    free_connection_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(connections_.size());
    connections_.push_back(nullptr);
    // Generation starts at 1, so an id is never 0 and a default/zero id
    // never resolves.
    connection_generation_.push_back(1);
  }
  connections_[slot] = conn;
  return (static_cast<std::uint64_t>(slot) << 32) |
         connection_generation_[slot];
}

void Network::unregister_connection(std::uint64_t id) {
  const std::uint32_t slot = static_cast<std::uint32_t>(id >> 32);
  if (slot >= connections_.size() ||
      connection_generation_[slot] != static_cast<std::uint32_t>(id)) {
    return;  // stale or unknown id: already recycled
  }
  connections_[slot] = nullptr;
  // Bump the generation so the outstanding id goes stale, then recycle
  // the slot (MessagePool-style freelist).
  ++connection_generation_[slot];
  free_connection_slots_.push_back(slot);
}

Connection* Network::find_connection(std::uint64_t id) const {
  const std::uint32_t slot = static_cast<std::uint32_t>(id >> 32);
  if (slot >= connections_.size() ||
      connection_generation_[slot] != static_cast<std::uint32_t>(id)) {
    return nullptr;
  }
  return connections_[slot];
}

void Network::finish_flow(FlowId id) {
  const auto it = flows_.find(id);
  check_invariant(it != flows_.end(), "completion event for unknown flow");
  Flow& flow = it->second;
  flow.completion_event = sim::kInvalidEventId;
  settle_flow(flow);
  if (flow.remaining > kDoneTolerance) {
    // Rates changed since this event was scheduled; re-derive the ETA.
    schedule_completion(id, flow);
    return;
  }
  unlink_flow(flow);
  Flow done = std::move(flow);
  flows_.erase(it);
  ++stats_.flows_completed;
  obs::count("net.flows_completed");
  obs::count("net.bytes_delivered",
             static_cast<std::uint64_t>(done.total));
  obs::observe("net.flow_duration_s",
               (sim_.now() - done.started).as_seconds(), kFlowSecondsSpec);
  obs::observe("net.flow_kilobytes", done.total / 1000.0,
               kFlowKilobytesSpec);
  // Rates are recomputed before the callback runs: on_complete must
  // never observe the finished flow's share still assigned.
  reallocate();
  done.callbacks.on_complete();
}

}  // namespace vsplice::net
