#include "net/bandwidth_schedule.h"

#include "common/error.h"

namespace vsplice::net {

void BandwidthSchedule::add_step(Duration at, Rate uplink, Rate downlink) {
  require(!at.is_negative(), "schedule step offset must be non-negative");
  require(steps_.empty() || steps_.back().at < at,
          "schedule steps must have strictly increasing offsets");
  steps_.push_back(Step{at, uplink, downlink});
}

std::pair<Rate, Rate> BandwidthSchedule::rates_at(Duration elapsed,
                                                  Rate initial_up,
                                                  Rate initial_down) const {
  Rate up = initial_up;
  Rate down = initial_down;
  for (const Step& step : steps_) {
    if (step.at > elapsed) break;
    up = step.uplink;
    down = step.downlink;
  }
  return {up, down};
}

void BandwidthSchedule::install(Network& network, NodeId node) const {
  for (const Step& step : steps_) {
    network.simulator().after(step.at, [&network, node, step] {
      network.set_node_bandwidth(node, step.uplink, step.downlink);
    });
  }
}

}  // namespace vsplice::net
