// Piecewise-constant bandwidth schedule for a host's access link — the
// paper's future-work item "available bandwidth changes over time".
#pragma once

#include <vector>

#include "common/units.h"
#include "net/network.h"
#include "net/types.h"

namespace vsplice::net {

class BandwidthSchedule {
 public:
  struct Step {
    Duration at = Duration::zero();  // offset from installation time
    Rate uplink = Rate::infinity();
    Rate downlink = Rate::infinity();
  };

  /// Appends a step; offsets must be strictly increasing.
  void add_step(Duration at, Rate uplink, Rate downlink);

  [[nodiscard]] const std::vector<Step>& steps() const { return steps_; }
  [[nodiscard]] bool empty() const { return steps_.empty(); }

  /// The rates in force `elapsed` after installation, given the initial
  /// rates; steps at exactly `elapsed` are considered applied.
  [[nodiscard]] std::pair<Rate, Rate> rates_at(Duration elapsed,
                                               Rate initial_up,
                                               Rate initial_down) const;

  /// Schedules set_node_bandwidth events on the network's simulator,
  /// offsets relative to now.
  void install(Network& network, NodeId node) const;

 private:
  std::vector<Step> steps_;
};

}  // namespace vsplice::net
