#include "net/connection.h"

#include "common/error.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/trace.h"

namespace vsplice::net {

Connection::Connection(Network& network, Rng& rng, NodeId client,
                       NodeId server)
    : net_{network},
      rng_{rng},
      client_{client},
      server_{server},
      one_way_{network.one_way_delay(client, server)},
      rtt_{network.rtt(client, server)},
      loss_{network.path_loss(client, server)},
      cwnd_{network.tcp(), rtt_, loss_} {
  id_ = net_.register_connection(this);
  require(client != server, "connection endpoints must differ");
  require(rtt_ > Duration::zero(),
          "connection requires a positive path RTT");
}

Connection::~Connection() {
  close();
  net_.unregister_connection(id_);
}

void Connection::connect(std::function<void()> on_established) {
  require(state_ == State::Fresh, "connect() on a non-fresh connection");
  require(static_cast<bool>(on_established),
          "connect needs an on_established callback");
  state_ = State::Connecting;
  const Duration d =
      handshake_delay(net_.tcp(), rtt_, loss_, rng_);
  connect_event_ = net_.simulator().after(
      d, [this, cb = std::move(on_established)] {
        connect_event_ = sim::kInvalidEventId;
        state_ = State::Established;
        last_activity_ = net_.simulator().now();
        obs::count("net.connections_opened");
        obs::emit(net_.simulator().now(),
                  obs::ConnectionOpened{
                      id_, static_cast<std::int64_t>(client_.value),
                      static_cast<std::int64_t>(server_.value)});
        cb();
      });
}

void Connection::send_message(NodeId sender, Bytes size,
                              std::function<void()> on_delivered) {
  require(established(), "send_message on a non-established connection");
  require(sender == client_ || sender == server_,
          "sender is not an endpoint of this connection");
  require(size >= 0, "message size must be non-negative");
  require(static_cast<bool>(on_delivered),
          "send_message needs a delivery callback");
  const Duration d = packet_delay(net_.tcp(), one_way_, loss_, rng_);
  last_activity_ = net_.simulator().now();
  // The callback parks in a recycled slot and the delivery event
  // captures only (this, slot), so close() can drop pending deliveries
  // without per-message shared_ptr bookkeeping or heap-allocated
  // captures.
  std::uint32_t slot;
  if (!free_message_slots_.empty()) {
    slot = free_message_slots_.back();
    free_message_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(messages_.size());
    messages_.emplace_back();
  }
  messages_[slot].on_delivered = std::move(on_delivered);
  messages_[slot].event = net_.simulator().after(
      d, [this, slot] { deliver_message(slot); });
}

void Connection::deliver_message(std::uint32_t slot) {
  // Free the slot before running the callback: it may send again
  // (reusing this slot) or close the connection (clearing messages_),
  // so no member is touched after cb().
  std::function<void()> cb = std::move(messages_[slot].on_delivered);
  messages_[slot].event = sim::kInvalidEventId;
  free_message_slots_.push_back(slot);
  cb();
}

void Connection::fetch(Bytes request_size, Bytes response_size,
                       std::function<void(const FetchResult&)> on_done) {
  require(established(), "fetch on a non-established connection");
  require(!fetch_.has_value(), "a fetch is already in flight");
  require(request_size >= 0 && response_size >= 0,
          "fetch sizes must be non-negative");
  require(static_cast<bool>(on_done), "fetch needs an on_done callback");

  const TimePoint now = net_.simulator().now();
  if (now - last_activity_ > net_.tcp().retransmission_timeout) {
    // Congestion window validation: restart slow start after idleness.
    cwnd_.reset_after_idle();
  }
  last_activity_ = now;

  fetch_.emplace();
  fetch_->started = now;
  fetch_->size = response_size;
  fetch_->on_done = std::move(on_done);

  // Request packet travels client -> server first.
  const Duration request_delay =
      packet_delay(net_.tcp(), one_way_, loss_, rng_);
  (void)request_size;  // fits in one packet for every protocol message here
  fetch_->request_event = net_.simulator().after(request_delay, [this] {
    fetch_->request_event = sim::kInvalidEventId;
    start_response_flow();
  });
}

void Connection::push(Bytes size,
                      std::function<void(const FetchResult&)> on_done) {
  require(established(), "push on a non-established connection");
  require(!fetch_.has_value(), "a transfer is already in flight");
  require(size >= 0, "push size must be non-negative");
  require(static_cast<bool>(on_done), "push needs an on_done callback");

  const TimePoint now = net_.simulator().now();
  if (now - last_activity_ > net_.tcp().retransmission_timeout) {
    cwnd_.reset_after_idle();
  }
  last_activity_ = now;

  fetch_.emplace();
  fetch_->started = now;
  fetch_->size = size;
  fetch_->on_done = std::move(on_done);
  if (span_parent_ != 0) {
    // A granted segment request: the PIECE payload starts flowing now.
    span_transfer_ = obs::open_span(
        obs::SpanKind::kPieceTransfer, now, span_parent_,
        static_cast<std::int64_t>(client_.value), span_segment_, size);
  }
  start_response_flow();
}

void Connection::start_response_flow() {
  FlowCallbacks callbacks;
  callbacks.on_complete = [this] {
    fetch_->flow = FlowId{};
    finish_fetch(/*aborted=*/false, fetch_->size);
  };
  callbacks.on_abort = [this](Bytes delivered) {
    if (!fetch_.has_value()) return;  // aborted by close() itself
    fetch_->flow = FlowId{};
    finish_fetch(/*aborted=*/true, delivered);
  };
  fetch_->flow = net_.start_flow(server_, client_, fetch_->size,
                                 cwnd_.rate(), std::move(callbacks));
  schedule_ramp();
}

void Connection::schedule_ramp() {
  if (cwnd_.at_ceiling()) return;
  fetch_->ramp_event = net_.simulator().after(rtt_, [this] {
    fetch_->ramp_event = sim::kInvalidEventId;
    cwnd_.on_round_trip();
    if (fetch_->flow.valid()) net_.set_flow_cap(fetch_->flow, cwnd_.rate());
    schedule_ramp();
  });
}

Rate Connection::transfer_rate() const {
  if (!fetch_.has_value() || !fetch_->flow.valid()) return Rate::zero();
  return net_.flow_rate(fetch_->flow);
}

void Connection::cancel_tracked_events() {
  auto& sim = net_.simulator();
  if (connect_event_ != sim::kInvalidEventId) {
    sim.cancel(connect_event_);
    connect_event_ = sim::kInvalidEventId;
  }
  // Cancelled deliveries have their callbacks destroyed right here
  // (message nodes a callback held stay checked out of the sender's
  // MessagePool — see message_pool.h for why that leak is deliberate).
  for (PendingMessage& pending : messages_) {
    if (pending.event != sim::kInvalidEventId) sim.cancel(pending.event);
  }
  messages_.clear();
  free_message_slots_.clear();
}

void Connection::finish_fetch(bool aborted, Bytes delivered) {
  check_invariant(fetch_.has_value(), "finish_fetch without a fetch");
  auto& sim = net_.simulator();
  if (fetch_->ramp_event != sim::kInvalidEventId) {
    sim.cancel(fetch_->ramp_event);
  }
  if (fetch_->request_event != sim::kInvalidEventId) {
    sim.cancel(fetch_->request_event);
  }
  FetchResult result;
  result.bytes_delivered = delivered;
  result.elapsed = sim.now() - fetch_->started;
  result.aborted = aborted;
  auto on_done = std::move(fetch_->on_done);
  fetch_.reset();
  last_activity_ = sim.now();
  if (span_transfer_ != 0) {
    obs::set_span_attr(span_transfer_, delivered);
    if (aborted) {
      obs::abort_span(span_transfer_, sim.now());
    } else {
      obs::close_span(span_transfer_, sim.now());
    }
    span_transfer_ = 0;
  }
  on_done(result);
}

void Connection::close() {
  if (state_ == State::Closed) return;
  const bool was_established = state_ == State::Established;
  state_ = State::Closed;
  cancel_tracked_events();
  if (span_request_ != 0) {
    // The REQUEST never reached the server (or was abandoned before the
    // grant); record the send leg as aborted.
    obs::abort_span(span_request_, net_.simulator().now());
    span_request_ = 0;
  }
  if (span_transfer_ != 0) {
    obs::abort_span(span_transfer_, net_.simulator().now());
    span_transfer_ = 0;
  }
  if (was_established) {
    obs::count("net.connections_closed");
    obs::emit(net_.simulator().now(),
              obs::ConnectionClosed{
                  id_, static_cast<std::int64_t>(client_.value),
                  static_cast<std::int64_t>(server_.value)});
  }
  if (fetch_.has_value()) {
    // Detach the flow first so its on_abort sees no active fetch, then
    // report the abort to the caller ourselves.
    const FlowId flow = fetch_->flow;
    auto& sim = net_.simulator();
    if (fetch_->ramp_event != sim::kInvalidEventId)
      sim.cancel(fetch_->ramp_event);
    if (fetch_->request_event != sim::kInvalidEventId)
      sim.cancel(fetch_->request_event);
    auto on_done = std::move(fetch_->on_done);
    const TimePoint started = fetch_->started;
    const Bytes size = fetch_->size;
    fetch_.reset();
    Bytes delivered = 0;
    if (flow.valid() && net_.flow_active(flow)) {
      delivered = size - net_.flow_remaining(flow);
      net_.abort_flow(flow);
    }
    FetchResult result;
    result.bytes_delivered = delivered;
    result.elapsed = sim.now() - started;
    result.aborted = true;
    if (on_done) on_done(result);
  }
}

}  // namespace vsplice::net
