// Star-topology fluid network simulator.
//
// Mirrors the paper's GENI setup: N hosts, each attached by a shaped
// access link (uplink + downlink) to a central hub node, with per-host
// one-way delay and loss probability configured RSpec-style. Transfers are
// fluid flows; whenever the flow set or a rate cap changes, the engine
// recomputes the max-min fair allocation and schedules the next
// completion event.
//
// Hot-path design (see DESIGN.md §9 and §16): the allocation runs through
// the star-specialized StarAllocator over scratch buffers owned by this
// Network, so a reallocation performs no heap allocations in steady
// state. Reallocation is *scoped*: per-link flow indexes let each flow
// event propagate a dirty set through the water-filling coupling graph
// (flows couple only through finite-capacity links) and recompute rates
// for the affected connected component alone — untouched flows keep
// their rates and completion events. Progress accounting is *lazy*: each
// flow carries its own last_advanced timestamp and accrues bytes at its
// constant rate; bytes are settled into the ledgers exactly when a
// flow's rate changes, at completion/abort, and virtually (without
// mutating) in queries. The pre-PR-10 full-rescan path is retained as a
// runtime-selectable oracle (set_full_reallocation /
// VSPLICE_FULL_REALLOC=1) and is byte-identical to the scoped path by
// construction: both settle the same flows at the same events in FlowId
// order, and a component's progressive-filling rounds reproduce the
// global rounds' arithmetic exactly (DESIGN.md §16).
//
// Callback contract: on_complete/on_abort are ALWAYS invoked after the
// rate table has been fully recomputed for the post-completion/post-abort
// flow set — a callback that inspects flow_rate()/flow_remaining() or
// starts new flows never observes stale rates. Callbacks may call back
// into the Network (start/abort/cap changes); they are never invoked from
// inside reallocate() itself (enforced by the non-reentrancy invariant).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "common/units.h"
#include "net/fair_share.h"
#include "net/tcp_model.h"
#include "net/types.h"
#include "sim/simulator.h"

namespace vsplice::net {

/// Per-host access characteristics (the knobs the paper turns via RSpec).
struct NodeSpec {
  Rate uplink = Rate::infinity();
  Rate downlink = Rate::infinity();
  /// This host's contribution to path latency; the delay between hosts a
  /// and b is a.one_way_delay + b.one_way_delay.
  Duration one_way_delay = Duration::zero();
  /// This host's contribution to path loss; combined as
  /// 1 - (1-loss_a)(1-loss_b).
  double loss = 0.0;
};

struct FlowCallbacks {
  /// Invoked when the last byte arrives (rate table already updated).
  std::function<void()> on_complete;
  /// Invoked if the flow is aborted (peer left, connection closed);
  /// receives the bytes delivered so far. May be null. The rate table is
  /// already updated when this runs.
  std::function<void(Bytes)> on_abort;
};

struct NetworkStats {
  std::uint64_t flows_started = 0;
  std::uint64_t flows_completed = 0;
  std::uint64_t flows_aborted = 0;
  std::uint64_t reallocations = 0;
  /// Reallocations whose dirty-set walk produced a scoped component,
  /// i.e. not forced full by a finite hub. The walk (and this counter)
  /// runs identically under the full-rescan oracle, so flipping the
  /// oracle on changes nothing observable but wall time.
  std::uint64_t reallocations_scoped = 0;
  /// Size of the dirty component, summed over all reallocations
  /// (forced-full reallocations contribute the whole table).
  /// flows_retouched / flows_active_integral is the touched-flows
  /// ratio: < 1 when scoping pays. Mode-independent, like above.
  std::uint64_t flows_retouched = 0;
  /// Active flows at each reallocation, summed — the work a full rescan
  /// would have done.
  std::uint64_t flows_active_integral = 0;
  /// Lazy settlements that actually moved bytes (a flow's accrued
  /// progress folded into the ledgers because its rate was about to
  /// change, or it completed/aborted).
  std::uint64_t flows_settled = 0;
  /// Completion events actually (re)scheduled; with the incremental
  /// reallocator this is far below reallocations × flows.
  std::uint64_t completion_reschedules = 0;
  /// Bytes settled into the ledgers so far; in-flight accrual since each
  /// flow's last settlement is NOT included — use
  /// Network::bytes_delivered() for the externally consistent total.
  double bytes_delivered = 0.0;
};

class Network {
 public:
  explicit Network(sim::Simulator& sim, TcpParams tcp = {});
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Adds a host to the star. Node ids are dense, starting at 0.
  NodeId add_node(const NodeSpec& spec);

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] const NodeSpec& node(NodeId id) const;

  /// Capacity of the shared hub trunk every flow crosses (infinite by
  /// default, matching a non-blocking switch). A finite hub couples every
  /// flow into one component, so reallocation falls back to full rescans
  /// while it is set.
  void set_hub_capacity(Rate capacity);

  /// Reshapes a host's access link mid-run (variable-bandwidth
  /// experiments); in-flight flows are re-allocated immediately.
  void set_node_bandwidth(NodeId id, Rate uplink, Rate downlink);

  /// Selects the full-rescan reallocation oracle (every flow recomputed
  /// on every flow event, as before PR 10). The scoped path is
  /// byte-identical; the oracle exists so differential tests and
  /// VSPLICE_FULL_REALLOC=1 runs can prove it.
  void set_full_reallocation(bool full) { full_reallocation_ = full; }
  [[nodiscard]] bool full_reallocation() const { return full_reallocation_; }

  [[nodiscard]] Duration one_way_delay(NodeId a, NodeId b) const;
  [[nodiscard]] Duration rtt(NodeId a, NodeId b) const;
  [[nodiscard]] double path_loss(NodeId a, NodeId b) const;

  /// Starts a fluid flow of `size` bytes from src to dst with a per-flow
  /// rate cap (the sender's TCP window limit; use Rate::infinity() for
  /// none). src must differ from dst. Completion/abort are reported via
  /// callbacks.
  FlowId start_flow(NodeId src, NodeId dst, Bytes size, Rate cap,
                    FlowCallbacks callbacks);

  /// Updates a flow's cap (slow-start ramp). No-op for finished flows.
  void set_flow_cap(FlowId id, Rate cap);

  /// Aborts a flow; returns false if it already finished.
  bool abort_flow(FlowId id);

  /// Aborts every flow with `node` as source or destination (peer churn).
  /// All matching flows are removed first and the rates recomputed once;
  /// the on_abort callbacks then run in FlowId order against the fully
  /// updated table.
  void abort_flows_for(NodeId node);

  [[nodiscard]] bool flow_active(FlowId id) const;
  [[nodiscard]] Rate flow_rate(FlowId id) const;
  [[nodiscard]] Bytes flow_remaining(FlowId id) const;
  [[nodiscard]] std::size_t active_flow_count() const {
    return flows_.size();
  }

  /// Bytes this node has sent / received over completed+partial flows.
  /// Includes each active flow's accrued-but-unsettled progress (a
  /// virtual read; nothing is mutated).
  [[nodiscard]] Bytes uploaded_by(NodeId id) const;
  [[nodiscard]] Bytes downloaded_by(NodeId id) const;

  /// Total bytes delivered across all flows, including in-flight accrual
  /// since each flow's last settlement (stats().bytes_delivered holds
  /// only the settled part).
  [[nodiscard]] double bytes_delivered() const;

  [[nodiscard]] const NetworkStats& stats() const { return stats_; }
  [[nodiscard]] const TcpParams& tcp() const { return tcp_; }
  [[nodiscard]] sim::Simulator& simulator() { return sim_; }

  /// Bytes held by the flow table, per-node accounting, per-link flow
  /// indexes, connection registry and effective-capacity slab
  /// (capacity-based; see obs/resource.h). The ordered flow map is
  /// approximated as one red-black node (3 pointers + color word) per
  /// entry. Reallocation/query scratch is deliberately excluded: its
  /// high-water mark depends on whether the scoped path or the
  /// full-rescan oracle ran, and accounting it would break the
  /// scoped/full byte-identity of ScenarioResult (same rule as the
  /// pool-only scratch, DESIGN.md §14).
  [[nodiscard]] std::uint64_t memory_bytes() const {
    const std::uint64_t map_node =
        sizeof(std::pair<FlowId, Flow>) + 4 * sizeof(void*);
    std::uint64_t link_lists = 0;
    for (const auto& list : link_flows_) {
      link_lists += static_cast<std::uint64_t>(list.capacity()) *
                    sizeof(std::pair<FlowId, Flow*>);
    }
    return static_cast<std::uint64_t>(flows_.size()) * map_node +
           static_cast<std::uint64_t>(nodes_.capacity()) * sizeof(NodeSpec) +
           static_cast<std::uint64_t>(link_capacity_.capacity() +
                                      effective_capacity_.capacity()) *
               sizeof(Rate) +
           static_cast<std::uint64_t>(uploaded_.capacity() +
                                      downloaded_.capacity()) *
               sizeof(double) +
           static_cast<std::uint64_t>(connections_.capacity()) *
               sizeof(void*) +
           static_cast<std::uint64_t>(connection_generation_.capacity() +
                                      free_connection_slots_.capacity()) *
               sizeof(std::uint32_t) +
           static_cast<std::uint64_t>(link_flows_.capacity()) *
               sizeof(std::vector<std::pair<FlowId, Flow*>>) +
           link_lists +
           static_cast<std::uint64_t>(link_mark_.capacity() +
                                      link_remap_mark_.capacity()) *
               sizeof(std::uint64_t) +
           static_cast<std::uint64_t>(link_compact_.capacity()) *
               sizeof(std::uint32_t);
  }

  /// Connection registry: lets protocol code hold a connection by id and
  /// find out later whether it still exists (e.g. queued requests whose
  /// requester may have hung up in the meantime). Ids are
  /// generation-tagged (slot << 32 | generation, like sim::EventId) so
  /// slots recycle through a freelist while a stale id keeps resolving
  /// to nullptr.
  [[nodiscard]] std::uint64_t register_connection(class Connection* conn);
  void unregister_connection(std::uint64_t id);
  [[nodiscard]] class Connection* find_connection(std::uint64_t id) const;

 private:
  struct Flow {
    NodeId src;
    NodeId dst;
    TimePoint started;
    /// Lazy progress (DESIGN.md §16): `remaining` is exact as of
    /// last_advanced; since then the flow accrues at `rate`. settle_flow
    /// folds the accrual in; accrued_bytes reads it without mutating.
    TimePoint last_advanced;
    double total = 0.0;      // bytes requested at start
    double remaining = 0.0;  // bytes; fractional to avoid rounding drift
    Rate cap = Rate::infinity();
    Rate rate = Rate::zero();
    FlowCallbacks callbacks;
    sim::EventId completion_event = sim::kInvalidEventId;
    /// Position inside link_flows_[uplink] / link_flows_[downlink]
    /// (swap-remove bookkeeping).
    std::uint32_t up_pos = 0;
    std::uint32_t down_pos = 0;
    /// Dirty-component epoch stamp (matches component_epoch_ while the
    /// flow is in the component being rebuilt).
    std::uint64_t mark = 0;
  };

  /// A flow removed from the table whose on_abort is still owed.
  struct AbortedFlow {
    FlowCallbacks callbacks;
    Bytes delivered = 0;
  };

  [[nodiscard]] LinkId uplink_of(NodeId id) const;
  [[nodiscard]] LinkId downlink_of(NodeId id) const;

  /// Folds a flow's accrued bytes since last_advanced into remaining and
  /// the uploaded/downloaded/bytes_delivered ledgers. Called exactly
  /// when the flow's rate is about to change and at completion/abort —
  /// in FlowId order when several settle at once — so the accumulation
  /// order is identical for the scoped path and the full-rescan oracle.
  void settle_flow(Flow& flow);
  /// Bytes the flow has accrued since last_advanced (virtual read).
  [[nodiscard]] double accrued_bytes(const Flow& flow) const;
  /// Sum of accrued bytes over the flows on one access link, in FlowId
  /// order (deterministic FP accumulation for the query paths).
  [[nodiscard]] double accrued_on_link(LinkId link) const;

  /// Derated goodput of a link given its concurrent-flow count (the
  /// parallel-TCP penalty applies to finite downlinks only).
  [[nodiscard]] Rate derated_capacity(LinkId link, std::size_t flows) const;
  /// Inserts the flow into its two link lists, refreshes the
  /// destination downlink's derated capacity, and seeds the dirty set.
  void link_flow(FlowId id, Flow& flow);
  /// Swap-removes the flow from its two link lists; otherwise as above.
  void unlink_flow(Flow& flow);

  /// Fills scratch_capacity_ with link capacities, derating
  /// oversubscribed downlinks by the parallel-TCP goodput penalty —
  /// the full-rescan oracle's independent recomputation (the scoped
  /// path maintains effective_capacity_ incrementally instead; the
  /// differential suite proves they agree).
  void compute_effective_capacities();
  /// Recomputes fair shares for the dirty component (or every flow, in
  /// full-rescan mode / while the hub trunk is finite); settles and
  /// reschedules completion events only for flows whose rate changed
  /// (or that lack a needed event). Consumes the pending dirty seeds.
  void reallocate();
  void schedule_completion(FlowId id, Flow& flow);
  /// Removes the flow (settling it and cancelling its event) and records
  /// the abort; the owed on_abort callback is returned for the caller to
  /// run after reallocation.
  AbortedFlow remove_aborted(std::map<FlowId, Flow>::iterator it);
  void finish_flow(FlowId id);
  void credit_transfer(const Flow& flow, double bytes);

  sim::Simulator& sim_;
  TcpParams tcp_;
  std::vector<NodeSpec> nodes_;
  /// link 0 = hub trunk; node i has uplink 1+2i, downlink 2+2i.
  std::vector<Rate> link_capacity_;
  /// link_capacity_ with the parallel-TCP downlink derate applied,
  /// maintained incrementally as flows come and go (DESIGN.md §16).
  std::vector<Rate> effective_capacity_;
  /// Ordered: reallocation iterates flows in FlowId order directly, so
  /// determinism needs no per-call id sort. Map nodes are stable, so
  /// link_flows_ may hold Flow pointers.
  std::map<FlowId, Flow> flows_;
  std::uint64_t next_flow_ = 1;
  std::vector<double> uploaded_;
  std::vector<double> downloaded_;
  NetworkStats stats_;
  bool in_reallocate_ = false;
  bool full_reallocation_ = false;
  /// One full rescan owed (hub capacity changed: the old constraint may
  /// have throttled any flow).
  bool pending_full_ = false;

  /// Connection registry: pointer per slot, generation per slot, free
  /// slots (MessagePool-style freelist; see register_connection).
  std::vector<class Connection*> connections_;
  std::vector<std::uint32_t> connection_generation_;
  std::vector<std::uint32_t> free_connection_slots_;

  /// Per-link flow index: the flows crossing each access link
  /// (unordered; swap-remove keeps removal O(1), up_pos/down_pos track
  /// positions). The hub trunk's entry (link 0) stays empty — a finite
  /// hub couples everything and forces the full-rescan path instead.
  std::vector<std::vector<std::pair<FlowId, Flow*>>> link_flows_;

  // Dirty-set seeds, consumed by the next reallocate().
  std::vector<std::uint32_t> seed_links_;        // expand iff coupling
  std::vector<std::uint32_t> seed_force_links_;  // capacity changed: always
  std::vector<FlowId> seed_flows_;               // always in the component

  // Component-closure scratch (epoch-stamped marks: no per-event clears).
  std::uint64_t component_epoch_ = 0;
  std::vector<std::uint64_t> link_mark_;    // BFS visited, per link
  std::vector<std::uint64_t> link_remap_mark_;  // compact-id valid, per link
  std::vector<std::uint32_t> link_compact_;     // compact link id, per link
  std::vector<std::uint32_t> link_stack_;       // BFS worklist

  // Reallocation scratch (steady-state: zero allocations per call).
  StarAllocator allocator_;
  std::vector<Rate> scratch_capacity_;
  std::vector<std::uint32_t> downlink_flows_;   // full-rescan tally, per link
  std::vector<StarFlowSpec> scratch_specs_;
  std::vector<Rate> scratch_rates_;
  std::vector<std::pair<FlowId, Flow*>> scratch_flows_;
  // Query scratch: FlowId-sorted accrual reads (see accrued_on_link).
  mutable std::vector<std::pair<FlowId, const Flow*>> query_scratch_;
};

}  // namespace vsplice::net
