// Star-topology fluid network simulator.
//
// Mirrors the paper's GENI setup: N hosts, each attached by a shaped
// access link (uplink + downlink) to a central hub node, with per-host
// one-way delay and loss probability configured RSpec-style. Transfers are
// fluid flows; whenever the flow set or a rate cap changes, the engine
// advances every flow's byte progress and recomputes the max-min fair
// allocation, then schedules the next completion event.
//
// Hot-path design (see DESIGN.md §9): the allocation runs through the
// star-specialized StarAllocator over scratch buffers owned by this
// Network, so a reallocation performs no heap allocations in steady
// state. Reallocation is incremental at the event-queue level — only
// flows whose rate actually changed have their completion event
// cancelled and rescheduled. abort_flows_for removes every matching flow
// first and reallocates once.
//
// Callback contract: on_complete/on_abort are ALWAYS invoked after the
// rate table has been fully recomputed for the post-completion/post-abort
// flow set — a callback that inspects flow_rate()/flow_remaining() or
// starts new flows never observes stale rates. Callbacks may call back
// into the Network (start/abort/cap changes); they are never invoked from
// inside reallocate() itself (enforced by the non-reentrancy invariant).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "common/units.h"
#include "net/fair_share.h"
#include "net/tcp_model.h"
#include "net/types.h"
#include "sim/simulator.h"

namespace vsplice::net {

/// Per-host access characteristics (the knobs the paper turns via RSpec).
struct NodeSpec {
  Rate uplink = Rate::infinity();
  Rate downlink = Rate::infinity();
  /// This host's contribution to path latency; the delay between hosts a
  /// and b is a.one_way_delay + b.one_way_delay.
  Duration one_way_delay = Duration::zero();
  /// This host's contribution to path loss; combined as
  /// 1 - (1-loss_a)(1-loss_b).
  double loss = 0.0;
};

struct FlowCallbacks {
  /// Invoked when the last byte arrives (rate table already updated).
  std::function<void()> on_complete;
  /// Invoked if the flow is aborted (peer left, connection closed);
  /// receives the bytes delivered so far. May be null. The rate table is
  /// already updated when this runs.
  std::function<void(Bytes)> on_abort;
};

struct NetworkStats {
  std::uint64_t flows_started = 0;
  std::uint64_t flows_completed = 0;
  std::uint64_t flows_aborted = 0;
  std::uint64_t reallocations = 0;
  /// Completion events actually (re)scheduled; with the incremental
  /// reallocator this is far below reallocations × flows.
  std::uint64_t completion_reschedules = 0;
  double bytes_delivered = 0.0;
};

class Network {
 public:
  explicit Network(sim::Simulator& sim, TcpParams tcp = {});
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Adds a host to the star. Node ids are dense, starting at 0.
  NodeId add_node(const NodeSpec& spec);

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] const NodeSpec& node(NodeId id) const;

  /// Capacity of the shared hub trunk every flow crosses (infinite by
  /// default, matching a non-blocking switch).
  void set_hub_capacity(Rate capacity);

  /// Reshapes a host's access link mid-run (variable-bandwidth
  /// experiments); in-flight flows are re-allocated immediately.
  void set_node_bandwidth(NodeId id, Rate uplink, Rate downlink);

  [[nodiscard]] Duration one_way_delay(NodeId a, NodeId b) const;
  [[nodiscard]] Duration rtt(NodeId a, NodeId b) const;
  [[nodiscard]] double path_loss(NodeId a, NodeId b) const;

  /// Starts a fluid flow of `size` bytes from src to dst with a per-flow
  /// rate cap (the sender's TCP window limit; use Rate::infinity() for
  /// none). src must differ from dst. Completion/abort are reported via
  /// callbacks.
  FlowId start_flow(NodeId src, NodeId dst, Bytes size, Rate cap,
                    FlowCallbacks callbacks);

  /// Updates a flow's cap (slow-start ramp). No-op for finished flows.
  void set_flow_cap(FlowId id, Rate cap);

  /// Aborts a flow; returns false if it already finished.
  bool abort_flow(FlowId id);

  /// Aborts every flow with `node` as source or destination (peer churn).
  /// All matching flows are removed first and the rates recomputed once;
  /// the on_abort callbacks then run in FlowId order against the fully
  /// updated table.
  void abort_flows_for(NodeId node);

  [[nodiscard]] bool flow_active(FlowId id) const;
  [[nodiscard]] Rate flow_rate(FlowId id) const;
  [[nodiscard]] Bytes flow_remaining(FlowId id) const;
  [[nodiscard]] std::size_t active_flow_count() const {
    return flows_.size();
  }

  /// Bytes this node has sent / received over completed+partial flows.
  [[nodiscard]] Bytes uploaded_by(NodeId id) const;
  [[nodiscard]] Bytes downloaded_by(NodeId id) const;

  [[nodiscard]] const NetworkStats& stats() const { return stats_; }
  [[nodiscard]] const TcpParams& tcp() const { return tcp_; }
  [[nodiscard]] sim::Simulator& simulator() { return sim_; }

  /// Bytes held by the flow table, per-node accounting, connection
  /// registry, and reallocation scratch (capacity-based; see
  /// obs/resource.h). The ordered flow map is approximated as one
  /// red-black node (3 pointers + color word) per entry.
  [[nodiscard]] std::uint64_t memory_bytes() const {
    const std::uint64_t map_node =
        sizeof(std::pair<FlowId, Flow>) + 4 * sizeof(void*);
    return static_cast<std::uint64_t>(flows_.size()) * map_node +
           static_cast<std::uint64_t>(nodes_.capacity()) * sizeof(NodeSpec) +
           static_cast<std::uint64_t>(link_capacity_.capacity()) *
               sizeof(Rate) +
           static_cast<std::uint64_t>(uploaded_.capacity() +
                                      downloaded_.capacity()) *
               sizeof(double) +
           static_cast<std::uint64_t>(connections_.capacity()) *
               sizeof(void*) +
           allocator_.memory_bytes() +
           static_cast<std::uint64_t>(scratch_capacity_.capacity() +
                                      scratch_rates_.capacity()) *
               sizeof(Rate) +
           static_cast<std::uint64_t>(downlink_flows_.capacity()) *
               sizeof(std::uint32_t) +
           static_cast<std::uint64_t>(scratch_specs_.capacity()) *
               sizeof(StarFlowSpec) +
           static_cast<std::uint64_t>(scratch_flows_.capacity()) *
               sizeof(std::pair<FlowId, Flow*>);
  }

  /// Connection registry: lets protocol code hold a connection by id and
  /// find out later whether it still exists (e.g. queued requests whose
  /// requester may have hung up in the meantime).
  [[nodiscard]] std::uint64_t register_connection(class Connection* conn);
  void unregister_connection(std::uint64_t id);
  [[nodiscard]] class Connection* find_connection(std::uint64_t id) const;

 private:
  struct Flow {
    NodeId src;
    NodeId dst;
    TimePoint started;
    double total = 0.0;      // bytes requested at start
    double remaining = 0.0;  // bytes; fractional to avoid rounding drift
    Rate cap = Rate::infinity();
    Rate rate = Rate::zero();
    FlowCallbacks callbacks;
    sim::EventId completion_event = sim::kInvalidEventId;
  };

  /// A flow removed from the table whose on_abort is still owed.
  struct AbortedFlow {
    FlowCallbacks callbacks;
    Bytes delivered = 0;
  };

  [[nodiscard]] LinkId uplink_of(NodeId id) const;
  [[nodiscard]] LinkId downlink_of(NodeId id) const;

  /// Integrates every active flow's progress from last_update_ to now.
  void advance_progress();
  /// Fills scratch_capacity_ with link capacities, derating
  /// oversubscribed downlinks by the parallel-TCP goodput penalty.
  /// Downlink flow counts are tallied in a flat per-link vector.
  void compute_effective_capacities();
  /// Recomputes fair shares; reschedules completion events only for
  /// flows whose rate changed (or that lack a needed event).
  void reallocate();
  void schedule_completion(FlowId id, Flow& flow);
  /// Removes the flow (cancelling its event) and records the abort; the
  /// owed on_abort callback is returned for the caller to run after
  /// reallocation.
  AbortedFlow remove_aborted(std::map<FlowId, Flow>::iterator it);
  void finish_flow(FlowId id);
  void credit_transfer(const Flow& flow, double bytes);

  sim::Simulator& sim_;
  TcpParams tcp_;
  std::vector<NodeSpec> nodes_;
  /// link 0 = hub trunk; node i has uplink 1+2i, downlink 2+2i.
  std::vector<Rate> link_capacity_;
  /// Ordered: reallocation iterates flows in FlowId order directly, so
  /// determinism needs no per-call id sort.
  std::map<FlowId, Flow> flows_;
  std::uint64_t next_flow_ = 1;
  TimePoint last_update_ = TimePoint::origin();
  std::vector<double> uploaded_;
  std::vector<double> downloaded_;
  NetworkStats stats_;
  bool in_reallocate_ = false;
  /// Live connections indexed by id - 1. Ids are never recycled (a
  /// stale id must keep resolving to nullptr, see find_connection), so
  /// this grows with the total connections ever opened — 8 bytes each,
  /// cheaper than a hash table probed on every delivered message.
  std::uint64_t next_connection_id_ = 1;
  std::vector<class Connection*> connections_;

  // Reallocation scratch (steady-state: zero allocations per call).
  StarAllocator allocator_;
  std::vector<Rate> scratch_capacity_;
  std::vector<std::uint32_t> downlink_flows_;   // per link id
  std::vector<StarFlowSpec> scratch_specs_;
  std::vector<Rate> scratch_rates_;
  std::vector<std::pair<FlowId, Flow*>> scratch_flows_;
  // Sharded-progress scratch, used only when the simulator runs a worker
  // pool and the flow table is large (DESIGN.md §14). Excluded from
  // memory_bytes(): accounting pool-only scratch would make reported
  // memory depend on loop_threads and break serial/parallel identity.
  std::vector<Flow*> scratch_progress_;
  std::vector<double> scratch_moved_;
};

}  // namespace vsplice::net
