// Synthetic MPEG-4 encoder.
//
// Produces a VideoStream from a scene script, standing in for the real
// Xuggler/FFmpeg-encoded 1 Mbps MPEG-4 clip the paper streams. The model
// reproduces the two properties the splicing experiments depend on:
//
//  * GOP length tracks content — a GOP closes at a scene cut or when it
//    reaches the motion-dependent keyframe interval (long for static
//    scenes, sub-second for action);
//  * frame-size structure — each GOP is one I-frame followed by P/B
//    frames in a fixed pattern, with I >> P > B. Sizes are calibrated per
//    GOP so the whole stream lands on the target bitrate, then jittered
//    log-normally to mimic encoder variability.
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "common/units.h"
#include "video/scene.h"
#include "video/video_stream.h"

namespace vsplice::video {

struct EncoderParams {
  double fps = 25.0;
  /// Target mean bitrate; the paper streams a 1 Mbps (128 kB/s) video.
  Rate target_bitrate = Rate::megabits_per_second(1.0);
  /// Longest allowed GOP (keyframe interval for static content). Real
  /// encoders let stationary scenes run very long between keyframes —
  /// the paper: "the duration of the GOP can be very long".
  Duration max_gop = Duration::seconds(16.0);
  /// Number of B-frames between consecutive reference frames (IbbPbbP...).
  int b_frames = 2;
  /// Mean I-frame size relative to a P-frame at the same quality
  /// (typical H.264 material runs 3-6x).
  double i_to_p_ratio = 4.0;
  /// Mean B-frame size relative to a P-frame.
  double b_to_p_ratio = 0.4;
  /// Log-normal coefficient of variation applied to every frame size.
  double size_jitter_cv = 0.12;

  [[nodiscard]] Duration frame_duration() const {
    return Duration::seconds(1.0 / fps);
  }
};

/// Keyframe interval the encoder uses for a given motion level: static
/// content refreshes rarely, action content constantly.
[[nodiscard]] Duration keyframe_interval(const EncoderParams& params,
                                         Motion motion);

/// How much larger inter-frames get as motion increases (residual energy).
[[nodiscard]] double motion_complexity(Motion motion);

class SyntheticEncoder {
 public:
  explicit SyntheticEncoder(EncoderParams params = {});

  /// Encodes the script deterministically under `seed`.
  [[nodiscard]] VideoStream encode(const SceneScript& script,
                                   std::uint64_t seed) const;

  [[nodiscard]] const EncoderParams& params() const { return params_; }

 private:
  [[nodiscard]] Gop encode_gop(Duration gop_duration, Motion motion,
                               Rng& rng) const;

  EncoderParams params_;
};

/// The exact stream the paper-reproduction experiments use: the fixed
/// 2-minute mixed-content script encoded at 1 Mbps, 25 fps.
[[nodiscard]] VideoStream make_paper_video(std::uint64_t seed = 2015);

}  // namespace vsplice::video
