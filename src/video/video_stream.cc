#include "video/video_stream.h"

#include <algorithm>

#include "common/error.h"

namespace vsplice::video {

VideoStream::VideoStream(std::vector<Gop> gops, double fps)
    : gops_{std::move(gops)}, fps_{fps} {
  require(!gops_.empty(), "a video stream needs at least one GOP");
  require(fps_ > 0.0, "fps must be positive");
  for (const Gop& gop : gops_) {
    duration_ += gop.duration();
    byte_size_ += gop.byte_size();
    frame_count_ += gop.frame_count();
  }
}

Rate VideoStream::average_bitrate() const {
  return Rate::bytes_per_second(static_cast<double>(byte_size_) /
                                duration_.as_seconds());
}

std::vector<TimedFrame> VideoStream::timeline() const {
  std::vector<TimedFrame> out;
  out.reserve(frame_count_);
  Duration pts = Duration::zero();
  std::size_t frame_index = 0;
  for (std::size_t g = 0; g < gops_.size(); ++g) {
    for (const Frame& frame : gops_[g].frames()) {
      out.push_back(TimedFrame{frame, pts, g, frame_index++});
      pts += frame.duration;
    }
  }
  return out;
}

Duration VideoStream::longest_gop() const {
  return std::max_element(gops_.begin(), gops_.end(),
                          [](const Gop& a, const Gop& b) {
                            return a.duration() < b.duration();
                          })
      ->duration();
}

Duration VideoStream::shortest_gop() const {
  return std::min_element(gops_.begin(), gops_.end(),
                          [](const Gop& a, const Gop& b) {
                            return a.duration() < b.duration();
                          })
      ->duration();
}

}  // namespace vsplice::video
