// Elementary video-stream model: frames and closed GOPs.
//
// MPEG-4 video is a sequence of GOPs (groups of pictures). A closed GOP
// starts with an I-frame (independently decodable); the P and B frames
// that follow depend on it. For streaming research only frame *types*,
// *sizes* and *timing* matter — no pixels are modelled.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"

namespace vsplice::video {

enum class FrameType : std::uint8_t {
  I = 0,  // intra-coded: self-contained, large
  P = 1,  // predicted from previous reference
  B = 2,  // bi-directionally predicted, smallest
};

[[nodiscard]] const char* to_string(FrameType type);

struct Frame {
  FrameType type = FrameType::I;
  Bytes size = 0;
  /// Display duration (1/fps for constant-rate video).
  Duration duration = Duration::zero();

  [[nodiscard]] bool is_keyframe() const { return type == FrameType::I; }
  bool operator==(const Frame&) const = default;
};

/// A closed GOP: exactly one I-frame, at position 0. Playable on its own,
/// which is why GOP boundaries are natural splice points.
class Gop {
 public:
  /// Throws InvalidArgument unless frames form a valid closed GOP.
  explicit Gop(std::vector<Frame> frames);

  [[nodiscard]] const std::vector<Frame>& frames() const { return frames_; }
  [[nodiscard]] std::size_t frame_count() const { return frames_.size(); }
  [[nodiscard]] Bytes byte_size() const { return byte_size_; }
  [[nodiscard]] Duration duration() const { return duration_; }
  [[nodiscard]] const Frame& keyframe() const { return frames_.front(); }

  bool operator==(const Gop&) const = default;

 private:
  std::vector<Frame> frames_;
  Bytes byte_size_ = 0;
  Duration duration_ = Duration::zero();
};

}  // namespace vsplice::video
