#include "video/encoder.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace vsplice::video {

Duration keyframe_interval(const EncoderParams& params, Motion motion) {
  switch (motion) {
    case Motion::Static:
      return params.max_gop;
    case Motion::Low:
      return std::min(params.max_gop, Duration::seconds(6.0));
    case Motion::Moderate:
      return std::min(params.max_gop, Duration::seconds(3.0));
    case Motion::High:
      return std::min(params.max_gop, Duration::seconds(0.6));
  }
  return params.max_gop;
}

double motion_complexity(Motion motion) {
  switch (motion) {
    case Motion::Static:
      return 0.35;
    case Motion::Low:
      return 0.7;
    case Motion::Moderate:
      return 1.0;
    case Motion::High:
      return 1.6;
  }
  return 1.0;
}

SyntheticEncoder::SyntheticEncoder(EncoderParams params)
    : params_{params} {
  require(params_.fps > 0.0, "encoder fps must be positive");
  require(params_.target_bitrate > Rate::zero(),
          "target bitrate must be positive");
  require(params_.max_gop >= params_.frame_duration(),
          "max GOP must hold at least one frame");
  require(params_.b_frames >= 0, "b_frames must be non-negative");
  require(params_.i_to_p_ratio >= 1.0, "I frames cannot be smaller than P");
  require(params_.b_to_p_ratio > 0.0 && params_.b_to_p_ratio <= 1.0,
          "B/P ratio must be in (0, 1]");
  require(params_.size_jitter_cv >= 0.0, "jitter cv must be non-negative");
}

Gop SyntheticEncoder::encode_gop(Duration gop_duration, Motion motion,
                                 Rng& rng) const {
  const Duration frame_dur = params_.frame_duration();
  const auto frame_count = static_cast<std::size_t>(
      std::max<double>(1.0, std::round(gop_duration / frame_dur)));

  // Frame type pattern: I, then repeating groups of b_frames B-frames
  // followed by one P-frame (display order; decode order is irrelevant
  // to byte sizes).
  std::vector<FrameType> pattern;
  pattern.reserve(frame_count);
  pattern.push_back(FrameType::I);
  int b_run = 0;
  while (pattern.size() < frame_count) {
    if (b_run < params_.b_frames) {
      pattern.push_back(FrameType::B);
      ++b_run;
    } else {
      pattern.push_back(FrameType::P);
      b_run = 0;
    }
  }

  // Per-GOP byte budget keeps the stream on the target bitrate.
  const double budget =
      params_.target_bitrate.bytes_per_second() *
      (frame_dur * static_cast<double>(frame_count)).as_seconds();

  const double complexity = motion_complexity(motion);
  const double weight_i = params_.i_to_p_ratio;
  const double weight_p = complexity;
  const double weight_b = params_.b_to_p_ratio * complexity;

  double weight_total = 0.0;
  for (FrameType t : pattern) {
    weight_total += t == FrameType::I   ? weight_i
                    : t == FrameType::P ? weight_p
                                        : weight_b;
  }
  const double base = budget / weight_total;

  std::vector<Frame> frames;
  frames.reserve(frame_count);
  for (FrameType t : pattern) {
    const double weight = t == FrameType::I   ? weight_i
                          : t == FrameType::P ? weight_p
                                              : weight_b;
    double size = base * weight;
    if (params_.size_jitter_cv > 0.0) {
      size = rng.lognormal_mean_cv(size, params_.size_jitter_cv);
    }
    frames.push_back(Frame{
        t, std::max<Bytes>(1, static_cast<Bytes>(std::llround(size))),
        frame_dur});
  }
  return Gop{std::move(frames)};
}

VideoStream SyntheticEncoder::encode(const SceneScript& script,
                                     std::uint64_t seed) const {
  require(!script.empty(), "cannot encode an empty scene script");
  Rng rng{seed};
  const Duration frame_dur = params_.frame_duration();

  std::vector<Gop> gops;
  for (const Scene& scene : script) {
    require(scene.duration >= frame_dur,
            "every scene must hold at least one frame");
    Duration remaining = scene.duration;
    const Duration interval = keyframe_interval(params_, scene.motion);
    while (remaining >= frame_dur) {
      // Wobble the keyframe interval slightly so GOP sizes are not all
      // identical within a scene, as with a real encoder's scene-cut
      // detection.
      Duration gop_len = interval * rng.uniform(0.85, 1.15);
      gop_len = std::max(frame_dur, std::min(gop_len, remaining));
      // Snap to whole frames.
      const auto frames_in_gop = static_cast<double>(std::max<std::int64_t>(
          1, static_cast<std::int64_t>(std::round(gop_len / frame_dur))));
      gop_len = frame_dur * frames_in_gop;
      if (gop_len > remaining) gop_len = remaining;
      gops.push_back(encode_gop(gop_len, scene.motion, rng));
      remaining -= gops.back().duration();
    }
  }
  return VideoStream{std::move(gops), params_.fps};
}

VideoStream make_paper_video(std::uint64_t seed) {
  EncoderParams params;
  // The paper streams a "1 Mbps (128 kB/s)" MPEG-4 clip. That is the
  // nominal VBR target; the average rate of such encodes runs a little
  // below nominal, which matters at the 128 kB/s link point where the
  // sweep touches the video bitrate exactly.
  params.target_bitrate = Rate::megabits_per_second(0.92);
  const SyntheticEncoder encoder{params};
  return encoder.encode(paper_scene_script(), seed);
}

}  // namespace vsplice::video
