#include "video/frame.h"

#include "common/error.h"

namespace vsplice::video {

const char* to_string(FrameType type) {
  switch (type) {
    case FrameType::I:
      return "I";
    case FrameType::P:
      return "P";
    case FrameType::B:
      return "B";
  }
  return "?";
}

Gop::Gop(std::vector<Frame> frames) : frames_{std::move(frames)} {
  require(!frames_.empty(), "a GOP needs at least one frame");
  require(frames_.front().type == FrameType::I,
          "a closed GOP must start with an I-frame");
  for (std::size_t i = 0; i < frames_.size(); ++i) {
    const Frame& frame = frames_[i];
    require(i == 0 || frame.type != FrameType::I,
            "a closed GOP contains exactly one I-frame");
    require(frame.size > 0, "frame sizes must be positive");
    require(frame.duration > Duration::zero(),
            "frame durations must be positive");
    byte_size_ += frame.size;
    duration_ += frame.duration;
  }
}

}  // namespace vsplice::video
