// Minimal ISO Base Media File Format (MP4) writer/reader.
//
// Serializes a VideoStream into a structurally valid single-track MP4:
// ftyp + moov (mvhd / trak / tkhd / mdia / mdhd / hdlr / minf / vmhd /
// dinf+dref / stbl with stsd, stts, stss, stsc, stsz, stco) + mdat, one
// chunk per GOP. The seeder in the experiments serves spliced byte ranges
// of this file, and tests round-trip streams through it.
//
// Frame payloads carry deterministic pseudo-random bytes (no real codec
// data); an optional `vspl` box inside `udta` records the exact frame
// types so a round trip reproduces the stream bit-for-bit. Without it a
// reader can still recover keyframes from stss (non-sync frames read back
// as P).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "video/video_stream.h"

namespace vsplice::video {

struct Mp4WriteOptions {
  /// Media timescale (ticks per second). 90000 represents all common
  /// frame rates exactly.
  std::uint32_t timescale = 90000;
  /// Fill mdat with seeded pseudo-random payload bytes; when false the
  /// payload is zeros (faster for large benchmark videos).
  bool include_payload = true;
  std::uint64_t payload_seed = 1;
  /// Record per-frame types in a udta/vspl box so read_mp4 round-trips
  /// P/B distinction exactly.
  bool write_frame_types = true;
  /// Nominal display size written into tkhd (purely cosmetic).
  std::uint16_t width = 640;
  std::uint16_t height = 360;
};

/// Serializes the stream. Throws InvalidArgument for impossible options.
[[nodiscard]] std::vector<std::uint8_t> write_mp4(
    const VideoStream& stream, const Mp4WriteOptions& options = {});

/// Parses an MP4 produced by write_mp4 (or any single-video-track MP4
/// using the same box subset). Throws ParseError on malformed input.
[[nodiscard]] VideoStream read_mp4(std::span<const std::uint8_t> data);

/// Top-level box inventory, for structure checks and debugging.
struct Mp4BoxInfo {
  std::string type;
  std::uint64_t size = 0;
  std::uint64_t offset = 0;
};
[[nodiscard]] std::vector<Mp4BoxInfo> probe_boxes(
    std::span<const std::uint8_t> data);

/// FNV-1a checksum of the mdat payload; lets tests verify that spliced
/// byte ranges reassemble to the original media bytes.
[[nodiscard]] std::uint64_t mdat_checksum(
    std::span<const std::uint8_t> data);

}  // namespace vsplice::video
