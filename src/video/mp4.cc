#include "video/mp4.h"

#include <cmath>
#include <optional>

#include "common/bytes_io.h"
#include "common/error.h"
#include "common/rng.h"

namespace vsplice::video {

namespace {

// ---------------------------------------------------------------- writing

/// Starts a box: emits a size placeholder + fourcc, returns the offset of
/// the placeholder for end_box to patch.
std::size_t begin_box(ByteWriter& w, std::string_view type) {
  const std::size_t at = w.size();
  w.put_u32(0);
  w.put_fourcc(type);
  return at;
}

void end_box(ByteWriter& w, std::size_t at) {
  w.patch_u32(at, static_cast<std::uint32_t>(w.size() - at));
}

/// Full box = box + version/flags word.
std::size_t begin_full_box(ByteWriter& w, std::string_view type,
                           std::uint8_t version, std::uint32_t flags) {
  const std::size_t at = begin_box(w, type);
  w.put_u32((static_cast<std::uint32_t>(version) << 24) | (flags & 0xFFFFFF));
  return at;
}

struct SampleTables {
  std::vector<std::uint32_t> sizes;             // stsz, per frame
  std::vector<std::uint32_t> deltas;            // per frame, in timescale
  std::vector<std::uint32_t> sync_samples;      // stss, 1-based
  std::vector<std::uint32_t> samples_per_chunk; // one entry per GOP
  std::vector<FrameType> types;
  std::uint64_t media_duration = 0;
  std::uint64_t total_payload = 0;
};

SampleTables build_tables(const VideoStream& stream,
                          std::uint32_t timescale) {
  SampleTables tables;
  std::uint32_t sample_number = 1;
  for (const Gop& gop : stream.gops()) {
    tables.samples_per_chunk.push_back(
        static_cast<std::uint32_t>(gop.frame_count()));
    for (const Frame& frame : gop.frames()) {
      tables.sizes.push_back(static_cast<std::uint32_t>(frame.size));
      const auto delta = static_cast<std::uint32_t>(std::llround(
          frame.duration.as_seconds() * static_cast<double>(timescale)));
      require(delta > 0, "frame duration rounds to zero media ticks");
      tables.deltas.push_back(delta);
      tables.media_duration += delta;
      tables.total_payload += static_cast<std::uint64_t>(frame.size);
      if (frame.is_keyframe()) tables.sync_samples.push_back(sample_number);
      tables.types.push_back(frame.type);
      ++sample_number;
    }
  }
  return tables;
}

void write_stts(ByteWriter& w, const std::vector<std::uint32_t>& deltas) {
  // Run-length encode equal consecutive deltas.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> runs;
  for (std::uint32_t d : deltas) {
    if (!runs.empty() && runs.back().second == d) {
      ++runs.back().first;
    } else {
      runs.emplace_back(1, d);
    }
  }
  const std::size_t at = begin_full_box(w, "stts", 0, 0);
  w.put_u32(static_cast<std::uint32_t>(runs.size()));
  for (const auto& [count, delta] : runs) {
    w.put_u32(count);
    w.put_u32(delta);
  }
  end_box(w, at);
}

void write_stsc(ByteWriter& w,
                const std::vector<std::uint32_t>& samples_per_chunk) {
  // Run-length encode per the stsc first_chunk convention.
  struct Entry {
    std::uint32_t first_chunk;
    std::uint32_t samples;
  };
  std::vector<Entry> entries;
  for (std::size_t chunk = 0; chunk < samples_per_chunk.size(); ++chunk) {
    if (entries.empty() ||
        entries.back().samples != samples_per_chunk[chunk]) {
      entries.push_back(Entry{static_cast<std::uint32_t>(chunk + 1),
                              samples_per_chunk[chunk]});
    }
  }
  const std::size_t at = begin_full_box(w, "stsc", 0, 0);
  w.put_u32(static_cast<std::uint32_t>(entries.size()));
  for (const Entry& e : entries) {
    w.put_u32(e.first_chunk);
    w.put_u32(e.samples);
    w.put_u32(1);  // sample description index
  }
  end_box(w, at);
}

void write_stbl(ByteWriter& w, const SampleTables& tables,
                const Mp4WriteOptions& options,
                const std::vector<std::uint32_t>& chunk_offsets) {
  const std::size_t stbl = begin_box(w, "stbl");

  {  // stsd: one mp4v visual sample entry with no codec config.
    const std::size_t stsd = begin_full_box(w, "stsd", 0, 0);
    w.put_u32(1);
    const std::size_t entry = begin_box(w, "mp4v");
    w.put_zeros(6);   // reserved
    w.put_u16(1);     // data reference index
    w.put_zeros(16);  // pre-defined / reserved
    w.put_u16(options.width);
    w.put_u16(options.height);
    w.put_u32(0x00480000);  // 72 dpi horiz
    w.put_u32(0x00480000);  // 72 dpi vert
    w.put_u32(0);           // reserved
    w.put_u16(1);           // frame count per sample
    w.put_zeros(32);        // compressor name (pascal string, zeroed)
    w.put_u16(0x0018);      // depth: colour with no alpha
    w.put_i16(-1);          // pre-defined
    end_box(w, entry);
    end_box(w, stsd);
  }

  write_stts(w, tables.deltas);

  {  // stss: sync (key) samples.
    const std::size_t at = begin_full_box(w, "stss", 0, 0);
    w.put_u32(static_cast<std::uint32_t>(tables.sync_samples.size()));
    for (std::uint32_t s : tables.sync_samples) w.put_u32(s);
    end_box(w, at);
  }

  write_stsc(w, tables.samples_per_chunk);

  {  // stsz: per-sample sizes.
    const std::size_t at = begin_full_box(w, "stsz", 0, 0);
    w.put_u32(0);  // sample_size 0 -> per-sample table follows
    w.put_u32(static_cast<std::uint32_t>(tables.sizes.size()));
    for (std::uint32_t s : tables.sizes) w.put_u32(s);
    end_box(w, at);
  }

  {  // stco: chunk offsets.
    const std::size_t at = begin_full_box(w, "stco", 0, 0);
    w.put_u32(static_cast<std::uint32_t>(chunk_offsets.size()));
    for (std::uint32_t off : chunk_offsets) w.put_u32(off);
    end_box(w, at);
  }

  end_box(w, stbl);
}

void write_moov(ByteWriter& w, const VideoStream& stream,
                const SampleTables& tables, const Mp4WriteOptions& options,
                const std::vector<std::uint32_t>& chunk_offsets) {
  const std::size_t moov = begin_box(w, "moov");

  {  // mvhd
    const std::size_t at = begin_full_box(w, "mvhd", 0, 0);
    w.put_u32(0);  // creation time
    w.put_u32(0);  // modification time
    w.put_u32(options.timescale);
    w.put_u32(static_cast<std::uint32_t>(tables.media_duration));
    w.put_u32(0x00010000);  // rate 1.0
    w.put_u16(0x0100);      // volume 1.0
    w.put_zeros(10);        // reserved
    // Identity matrix.
    const std::uint32_t matrix[9] = {0x00010000, 0, 0, 0, 0x00010000,
                                     0,          0, 0, 0x40000000};
    for (std::uint32_t m : matrix) w.put_u32(m);
    w.put_zeros(24);  // pre-defined
    w.put_u32(2);     // next track id
    end_box(w, at);
  }

  const std::size_t trak = begin_box(w, "trak");
  {  // tkhd (flags: enabled | in movie)
    const std::size_t at = begin_full_box(w, "tkhd", 0, 0x000003);
    w.put_u32(0);  // creation
    w.put_u32(0);  // modification
    w.put_u32(1);  // track id
    w.put_u32(0);  // reserved
    w.put_u32(static_cast<std::uint32_t>(tables.media_duration));
    w.put_zeros(8);  // reserved
    w.put_u16(0);    // layer
    w.put_u16(0);    // alternate group
    w.put_u16(0);    // volume (video)
    w.put_u16(0);    // reserved
    const std::uint32_t matrix[9] = {0x00010000, 0, 0, 0, 0x00010000,
                                     0,          0, 0, 0x40000000};
    for (std::uint32_t m : matrix) w.put_u32(m);
    w.put_u32(static_cast<std::uint32_t>(options.width) << 16);
    w.put_u32(static_cast<std::uint32_t>(options.height) << 16);
    end_box(w, at);
  }

  const std::size_t mdia = begin_box(w, "mdia");
  {  // mdhd
    const std::size_t at = begin_full_box(w, "mdhd", 0, 0);
    w.put_u32(0);
    w.put_u32(0);
    w.put_u32(options.timescale);
    w.put_u32(static_cast<std::uint32_t>(tables.media_duration));
    w.put_u16(0x55C4);  // language: "und"
    w.put_u16(0);
    end_box(w, at);
  }
  {  // hdlr
    const std::size_t at = begin_full_box(w, "hdlr", 0, 0);
    w.put_u32(0);  // pre-defined
    w.put_fourcc("vide");
    w.put_zeros(12);
    w.put_string("VideoHandler");
    w.put_u8(0);
    end_box(w, at);
  }

  const std::size_t minf = begin_box(w, "minf");
  {  // vmhd
    const std::size_t at = begin_full_box(w, "vmhd", 0, 1);
    w.put_u16(0);    // graphics mode: copy
    w.put_zeros(6);  // opcolor
    end_box(w, at);
  }
  {  // dinf > dref > url (data in same file)
    const std::size_t dinf = begin_box(w, "dinf");
    const std::size_t dref = begin_full_box(w, "dref", 0, 0);
    w.put_u32(1);
    const std::size_t url = begin_full_box(w, "url ", 0, 1);
    end_box(w, url);
    end_box(w, dref);
    end_box(w, dinf);
  }
  write_stbl(w, tables, options, chunk_offsets);
  end_box(w, minf);
  end_box(w, mdia);
  end_box(w, trak);

  if (options.write_frame_types) {
    // udta > vspl: fps as micro-fps u32, then one byte per frame type.
    const std::size_t udta = begin_box(w, "udta");
    const std::size_t vspl = begin_box(w, "vspl");
    w.put_u32(static_cast<std::uint32_t>(
        std::llround(stream.fps() * 1e6)));
    w.put_u32(static_cast<std::uint32_t>(tables.types.size()));
    for (FrameType t : tables.types)
      w.put_u8(static_cast<std::uint8_t>(t));
    end_box(w, vspl);
    end_box(w, udta);
  }

  end_box(w, moov);
}

// ---------------------------------------------------------------- reading

struct Box {
  std::string type;
  ByteReader body;
  std::uint64_t offset = 0;
  std::uint64_t size = 0;
};

/// Reads the next box header+body from `r`.
Box next_box(ByteReader& r, std::uint64_t base_offset) {
  const std::uint64_t at = base_offset + r.position();
  std::uint64_t size = r.get_u32();
  const std::string type = r.get_fourcc();
  std::size_t header = 8;
  if (size == 1) {
    size = r.get_u64();
    header = 16;
  } else if (size == 0) {
    size = header + r.remaining();  // box extends to end of file
  }
  if (size < header) throw ParseError{"box '" + type + "' shorter than its header"};
  Box box{type, r.sub_reader(static_cast<std::size_t>(size - header)), at,
          size};
  return box;
}

struct ParsedTables {
  std::vector<std::uint32_t> sizes;
  std::vector<std::uint32_t> deltas;
  std::vector<bool> is_sync;
  std::uint32_t timescale = 0;
  std::optional<std::vector<FrameType>> explicit_types;
  std::optional<double> explicit_fps;
};

void parse_stbl(ByteReader r, ParsedTables& out) {
  while (!r.at_end()) {
    Box box = next_box(r, 0);
    ByteReader& b = box.body;
    if (box.type == "stts") {
      b.skip(4);
      const std::uint32_t entries = b.get_u32();
      for (std::uint32_t i = 0; i < entries; ++i) {
        const std::uint32_t count = b.get_u32();
        const std::uint32_t delta = b.get_u32();
        for (std::uint32_t k = 0; k < count; ++k) out.deltas.push_back(delta);
      }
    } else if (box.type == "stss") {
      b.skip(4);
      const std::uint32_t entries = b.get_u32();
      for (std::uint32_t i = 0; i < entries; ++i) {
        const std::uint32_t sample = b.get_u32();  // 1-based
        if (sample == 0) throw ParseError{"stss sample number 0"};
        if (out.is_sync.size() < sample) out.is_sync.resize(sample, false);
        out.is_sync[sample - 1] = true;
      }
    } else if (box.type == "stsz") {
      b.skip(4);
      const std::uint32_t fixed = b.get_u32();
      const std::uint32_t count = b.get_u32();
      for (std::uint32_t i = 0; i < count; ++i) {
        out.sizes.push_back(fixed != 0 ? fixed : b.get_u32());
      }
    }
    // stsd and stco contents are not needed to rebuild the model.
  }
}

void parse_moov(ByteReader r, ParsedTables& out) {
  while (!r.at_end()) {
    Box box = next_box(r, 0);
    if (box.type == "trak" || box.type == "mdia" || box.type == "minf") {
      parse_moov(box.body, out);  // recurse into containers
    } else if (box.type == "mdhd") {
      ByteReader& b = box.body;
      const std::uint32_t version_flags = b.get_u32();
      if ((version_flags >> 24) == 1) {
        b.skip(16);  // 64-bit times
        out.timescale = b.get_u32();
      } else {
        b.skip(8);
        out.timescale = b.get_u32();
      }
    } else if (box.type == "stbl") {
      parse_stbl(box.body, out);
    } else if (box.type == "udta") {
      ByteReader u = box.body;
      while (!u.at_end()) {
        Box inner = next_box(u, 0);
        if (inner.type != "vspl") continue;
        ByteReader& b = inner.body;
        out.explicit_fps =
            static_cast<double>(b.get_u32()) / 1e6;
        const std::uint32_t count = b.get_u32();
        std::vector<FrameType> types;
        types.reserve(count);
        for (std::uint32_t i = 0; i < count; ++i) {
          const std::uint8_t t = b.get_u8();
          if (t > 2) throw ParseError{"vspl: bad frame type"};
          types.push_back(static_cast<FrameType>(t));
        }
        out.explicit_types = std::move(types);
      }
    }
  }
}

}  // namespace

std::vector<std::uint8_t> write_mp4(const VideoStream& stream,
                                    const Mp4WriteOptions& options) {
  require(options.timescale > 0, "mp4 timescale must be positive");
  const SampleTables tables = build_tables(stream, options.timescale);

  // ftyp
  ByteWriter ftyp;
  {
    const std::size_t at = begin_box(ftyp, "ftyp");
    ftyp.put_fourcc("isom");
    ftyp.put_u32(512);
    ftyp.put_fourcc("isom");
    ftyp.put_fourcc("mp41");
    end_box(ftyp, at);
  }

  // First pass: moov with zeroed chunk offsets, to learn its size.
  std::vector<std::uint32_t> zero_offsets(stream.gop_count(), 0);
  ByteWriter probe;
  write_moov(probe, stream, tables, options, zero_offsets);
  const std::size_t moov_size = probe.size();

  // Real chunk offsets: one chunk per GOP inside mdat.
  const std::uint64_t mdat_payload_start =
      ftyp.size() + moov_size + 8;  // + mdat header
  std::vector<std::uint32_t> offsets;
  offsets.reserve(stream.gop_count());
  std::uint64_t cursor = mdat_payload_start;
  for (const Gop& gop : stream.gops()) {
    require(cursor <= 0xFFFFFFFFULL, "file too large for 32-bit stco");
    offsets.push_back(static_cast<std::uint32_t>(cursor));
    cursor += static_cast<std::uint64_t>(gop.byte_size());
  }

  ByteWriter out{static_cast<std::size_t>(cursor)};
  out.put_bytes(ftyp.bytes());
  write_moov(out, stream, tables, options, offsets);
  check_invariant(out.size() == ftyp.size() + moov_size,
                  "moov size changed between passes");

  // mdat
  out.put_u32(static_cast<std::uint32_t>(8 + tables.total_payload));
  out.put_fourcc("mdat");
  if (options.include_payload) {
    Rng rng{options.payload_seed};
    std::uint64_t remaining = tables.total_payload;
    while (remaining >= 8) {
      out.put_u64(rng.next_u64());
      remaining -= 8;
    }
    while (remaining > 0) {
      out.put_u8(static_cast<std::uint8_t>(rng.next_u64() & 0xFF));
      --remaining;
    }
  } else {
    out.put_zeros(static_cast<std::size_t>(tables.total_payload));
  }
  return out.take();
}

VideoStream read_mp4(std::span<const std::uint8_t> data) {
  ByteReader r{data};
  ParsedTables tables;
  bool saw_moov = false;
  while (!r.at_end()) {
    Box box = next_box(r, 0);
    if (box.type == "moov") {
      parse_moov(box.body, tables);
      saw_moov = true;
    }
  }
  if (!saw_moov) throw ParseError{"no moov box found"};
  if (tables.timescale == 0) throw ParseError{"no mdhd timescale"};
  if (tables.sizes.empty()) throw ParseError{"no samples in stsz"};
  if (tables.sizes.size() != tables.deltas.size()) {
    throw ParseError{"stsz and stts disagree on sample count"};
  }
  tables.is_sync.resize(tables.sizes.size(), false);
  if (!tables.is_sync.front()) {
    throw ParseError{"first sample is not a sync sample"};
  }
  if (tables.explicit_types &&
      tables.explicit_types->size() != tables.sizes.size()) {
    throw ParseError{"vspl frame-type count mismatch"};
  }

  // Rebuild GOPs at sync-sample boundaries.
  std::vector<Gop> gops;
  std::vector<Frame> current;
  for (std::size_t i = 0; i < tables.sizes.size(); ++i) {
    if (tables.is_sync[i] && !current.empty()) {
      gops.emplace_back(std::move(current));
      current = {};
    }
    FrameType type;
    if (tables.explicit_types) {
      type = (*tables.explicit_types)[i];
      if (tables.is_sync[i] != (type == FrameType::I)) {
        throw ParseError{"vspl frame types disagree with stss"};
      }
    } else {
      type = tables.is_sync[i] ? FrameType::I : FrameType::P;
    }
    const double seconds = static_cast<double>(tables.deltas[i]) /
                           static_cast<double>(tables.timescale);
    current.push_back(Frame{type, static_cast<Bytes>(tables.sizes[i]),
                            Duration::seconds(seconds)});
  }
  if (!current.empty()) gops.emplace_back(std::move(current));

  double fps;
  if (tables.explicit_fps) {
    fps = *tables.explicit_fps;
  } else {
    fps = static_cast<double>(tables.timescale) /
          static_cast<double>(tables.deltas.front());
  }
  return VideoStream{std::move(gops), fps};
}

std::vector<Mp4BoxInfo> probe_boxes(std::span<const std::uint8_t> data) {
  std::vector<Mp4BoxInfo> out;
  ByteReader r{data};
  while (!r.at_end()) {
    Box box = next_box(r, 0);
    out.push_back(Mp4BoxInfo{box.type, box.size, box.offset});
  }
  return out;
}

std::uint64_t mdat_checksum(std::span<const std::uint8_t> data) {
  ByteReader r{data};
  while (!r.at_end()) {
    Box box = next_box(r, 0);
    if (box.type != "mdat") continue;
    std::uint64_t hash = 1469598103934665603ULL;  // FNV-1a 64 offset basis
    ByteReader& b = box.body;
    while (!b.at_end()) {
      hash ^= b.get_u8();
      hash *= 1099511628211ULL;
    }
    return hash;
  }
  throw ParseError{"no mdat box found"};
}

}  // namespace vsplice::video
