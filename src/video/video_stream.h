// A complete encoded video: an ordered sequence of closed GOPs plus the
// encoding's nominal frame rate.
#pragma once

#include <vector>

#include "common/units.h"
#include "video/frame.h"

namespace vsplice::video {

/// A frame together with its absolute presentation time within the
/// stream and the index of the GOP that contains it.
struct TimedFrame {
  Frame frame;
  Duration pts = Duration::zero();  // presentation offset from stream start
  std::size_t gop_index = 0;
  std::size_t frame_index = 0;  // global display index
};

class VideoStream {
 public:
  VideoStream(std::vector<Gop> gops, double fps);

  [[nodiscard]] const std::vector<Gop>& gops() const { return gops_; }
  [[nodiscard]] std::size_t gop_count() const { return gops_.size(); }
  [[nodiscard]] double fps() const { return fps_; }

  [[nodiscard]] Duration duration() const { return duration_; }
  [[nodiscard]] Bytes byte_size() const { return byte_size_; }
  [[nodiscard]] std::size_t frame_count() const { return frame_count_; }

  /// Mean bitrate over the whole stream.
  [[nodiscard]] Rate average_bitrate() const;

  /// Flattens the stream to display order with absolute timestamps.
  [[nodiscard]] std::vector<TimedFrame> timeline() const;

  /// Longest / shortest GOP durations — the spread that makes GOP-based
  /// splicing produce wildly uneven segments.
  [[nodiscard]] Duration longest_gop() const;
  [[nodiscard]] Duration shortest_gop() const;

  bool operator==(const VideoStream&) const = default;

 private:
  std::vector<Gop> gops_;
  double fps_;
  Duration duration_ = Duration::zero();
  Bytes byte_size_ = 0;
  std::size_t frame_count_ = 0;
};

}  // namespace vsplice::video
