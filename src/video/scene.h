// Scene scripts: the content model driving the synthetic encoder.
//
// The paper's key observation about GOP-based splicing is that GOP
// duration tracks content: "if a video contains constantly changing
// scenery, the duration of the GOP will be very short. If a video
// contains a stationary scene ... the duration of the GOP can be very
// long." A scene script is the sequence of (motion level, duration)
// stretches that produces exactly that behaviour.
#pragma once

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/units.h"

namespace vsplice::video {

enum class Motion {
  Static,    // talking head, stationary scenery -> very long GOPs
  Low,       // slow pans
  Moderate,  // typical drama
  High,      // action, rapid scene cuts -> sub-second GOPs
};

[[nodiscard]] const char* to_string(Motion motion);

struct Scene {
  Motion motion = Motion::Moderate;
  Duration duration = Duration::zero();
};

using SceneScript = std::vector<Scene>;

[[nodiscard]] Duration total_duration(const SceneScript& script);

/// A mixed-content script covering `total`: random scene lengths and a
/// motion mix typical of entertainment video (some long static stretches,
/// bursts of action). Deterministic in `rng`.
[[nodiscard]] SceneScript random_scene_script(Duration total, Rng& rng);

/// A single-motion script (useful for targeted tests: all-static video
/// yields the pathological long-GOP case).
[[nodiscard]] SceneScript uniform_scene_script(Motion motion,
                                               Duration total);

/// The fixed script used by the paper-reproduction experiments: a 2-minute
/// video mixing static dialogue, moderate motion, and action bursts, so
/// GOP-based splicing sees both very large and very small segments.
/// Deterministic (no RNG) so every experiment streams the same video.
[[nodiscard]] SceneScript paper_scene_script();

}  // namespace vsplice::video
