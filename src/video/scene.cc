#include "video/scene.h"

#include "common/error.h"

namespace vsplice::video {

const char* to_string(Motion motion) {
  switch (motion) {
    case Motion::Static:
      return "static";
    case Motion::Low:
      return "low";
    case Motion::Moderate:
      return "moderate";
    case Motion::High:
      return "high";
  }
  return "?";
}

Duration total_duration(const SceneScript& script) {
  Duration total = Duration::zero();
  for (const Scene& scene : script) total += scene.duration;
  return total;
}

SceneScript random_scene_script(Duration total, Rng& rng) {
  require(total > Duration::zero(), "script duration must be positive");
  SceneScript script;
  Duration remaining = total;
  while (remaining > Duration::zero()) {
    const double pick = rng.next_double();
    Motion motion;
    double mean_scene_seconds;
    if (pick < 0.25) {
      motion = Motion::Static;
      mean_scene_seconds = 12.0;
    } else if (pick < 0.50) {
      motion = Motion::Low;
      mean_scene_seconds = 8.0;
    } else if (pick < 0.80) {
      motion = Motion::Moderate;
      mean_scene_seconds = 6.0;
    } else {
      motion = Motion::High;
      mean_scene_seconds = 4.0;
    }
    Duration length = Duration::seconds(
        std::min(std::max(rng.exponential(mean_scene_seconds), 1.0), 30.0));
    if (length > remaining) length = remaining;
    script.push_back(Scene{motion, length});
    remaining -= length;
  }
  return script;
}

SceneScript uniform_scene_script(Motion motion, Duration total) {
  require(total > Duration::zero(), "script duration must be positive");
  return {Scene{motion, total}};
}

SceneScript paper_scene_script() {
  // 120 seconds of mixed content. Chosen so that GOP-based splicing
  // produces both multi-second, megabyte segments (the static dialogue
  // stretches run to the encoder's long keyframe interval) and
  // sub-second segments (the action bursts cut constantly), per the
  // paper's Section VI-A discussion of long and short GOPs.
  return {
      Scene{Motion::Moderate, Duration::seconds(5)},
      Scene{Motion::Static, Duration::seconds(11)},
      Scene{Motion::High, Duration::seconds(6)},
      Scene{Motion::Static, Duration::seconds(9)},
      Scene{Motion::Low, Duration::seconds(5)},
      Scene{Motion::High, Duration::seconds(5)},
      Scene{Motion::Static, Duration::seconds(12)},
      Scene{Motion::Moderate, Duration::seconds(5)},
      Scene{Motion::High, Duration::seconds(6)},
      Scene{Motion::Static, Duration::seconds(10)},
      Scene{Motion::Low, Duration::seconds(4)},
      Scene{Motion::High, Duration::seconds(5)},
      Scene{Motion::Static, Duration::seconds(8)},
      Scene{Motion::Moderate, Duration::seconds(5)},
      Scene{Motion::High, Duration::seconds(5)},
      Scene{Motion::Static, Duration::seconds(9)},
      Scene{Motion::Moderate, Duration::seconds(5)},
      Scene{Motion::High, Duration::seconds(5)},
  };
}

}  // namespace vsplice::video
