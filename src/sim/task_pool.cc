#include "sim/task_pool.h"

#include <utility>

namespace vsplice::sim {

TaskPool::TaskPool(std::size_t lanes) {
  if (lanes <= 1) return;
  workers_.reserve(lanes - 1);
  for (std::size_t i = 0; i + 1 < lanes; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

TaskPool::~TaskPool() {
  {
    const std::lock_guard<std::mutex> lock{mu_};
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

bool TaskPool::run_one(std::unique_lock<std::mutex>& lock) {
  if (queue_.empty()) return false;
  std::function<void()> task = std::move(queue_.front());
  queue_.pop_front();
  ++busy_;
  lock.unlock();
  task();
  lock.lock();
  --busy_;
  return true;
}

void TaskPool::worker_loop() {
  std::unique_lock<std::mutex> lock{mu_};
  while (true) {
    work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (stop_ && queue_.empty()) return;
    run_one(lock);
    if (queue_.empty() && busy_ == 0) idle_cv_.notify_all();
  }
}

void TaskPool::submit(std::function<void()> task) {
  if (workers_.empty()) {
    task();
    return;
  }
  {
    const std::lock_guard<std::mutex> lock{mu_};
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void TaskPool::quiesce() {
  if (workers_.empty()) return;
  std::unique_lock<std::mutex> lock{mu_};
  // Help drain: the commit thread is a lane, not a spectator.
  while (run_one(lock)) {
  }
  idle_cv_.wait(lock, [this] { return queue_.empty() && busy_ == 0; });
}

void TaskPool::parallel_for(
    std::size_t n,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  const std::size_t blocks = std::min(n, lanes());
  if (blocks <= 1) {
    body(0, 0, n);
    return;
  }
  // Deterministic contiguous partition: block b covers
  // [b*n/blocks, (b+1)*n/blocks).
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::size_t begin = b * n / blocks;
    const std::size_t end = (b + 1) * n / blocks;
    submit([&body, b, begin, end] { body(b, begin, end); });
  }
  quiesce();
}

}  // namespace vsplice::sim
