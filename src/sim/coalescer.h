// Arm-once flush timer for epoch-batched control traffic.
//
// A producer that emits many small updates per epoch (HAVE fan-out,
// announce digests) calls arm() after each update; the first arm in a
// window schedules one flush event `delay` later, and every further arm
// inside the window is a no-op. The flush callback fires once with the
// whole epoch's accumulation, collapsing N simulator events into one.
// The callback may arm() again from inside the flush to start the next
// epoch.
#pragma once

#include <cstddef>
#include <functional>

#include "common/units.h"
#include "sim/simulator.h"

namespace vsplice::sim {

class CoalescingFlush {
 public:
  /// `owner` tags the flush event for the parallel loop's speculation
  /// windows, exactly like the owner's other private-state events.
  CoalescingFlush(Simulator& sim, Duration delay, std::function<void()> fn,
                  OwnerId owner = kNoOwner);
  CoalescingFlush(const CoalescingFlush&) = delete;
  CoalescingFlush& operator=(const CoalescingFlush&) = delete;
  ~CoalescingFlush() { cancel(); }

  /// Schedules the flush `delay` from now unless one is already
  /// pending. Returns true when this call armed the timer.
  bool arm();

  /// Drops the pending flush, if any (a departing owner abandons its
  /// accumulated digest rather than announcing after leaving).
  void cancel();

  [[nodiscard]] bool armed() const { return event_ != kInvalidEventId; }

  /// Deterministic footprint for the memory roll-up; the std::function
  /// target is bounded by its inline buffer for the captures used here.
  [[nodiscard]] static constexpr std::size_t memory_bytes() {
    return sizeof(CoalescingFlush);
  }

 private:
  Simulator& sim_;
  Duration delay_;
  std::function<void()> fn_;
  OwnerId owner_;
  EventId event_ = kInvalidEventId;
};

}  // namespace vsplice::sim
