#include "sim/simulator.h"

#include <algorithm>

#include "common/error.h"
#include "obs/metrics.h"
#include "obs/profiler.h"

namespace vsplice::sim {

EventId Simulator::at(TimePoint t, std::function<void()> fn,
                      OwnerId owner) {
  // Format the diagnostic only on failure: this runs once per event.
  if (t < now_) {
    throw InvalidArgument{"cannot schedule an event in the past (" +
                          t.to_string() + " < " + now_.to_string() + ")"};
  }
  require(static_cast<bool>(fn), "cannot schedule a null callback");
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    callbacks_[slot] = std::move(fn);
    owner_[slot] = owner;
  } else {
    slot = static_cast<std::uint32_t>(generation_.size());
    generation_.push_back(1);
    callbacks_.push_back(std::move(fn));
    owner_.push_back(owner);
  }
  const EventId id = make_id(slot, generation_[slot]);
  {
    VSPLICE_PROFILE_SCOPE("sim.schedule");
    heap_.push_back(Entry{t, next_sequence_++, id});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
  }
  heap_high_water_ = std::max(heap_high_water_, heap_.size());
  ++live_;
  events_scheduled_.add();
  return id;
}

EventId Simulator::after(Duration d, std::function<void()> fn,
                         OwnerId owner) {
  require(!d.is_negative(), "cannot schedule with a negative delay");
  return at(now_ + d, std::move(fn), owner);
}

void Simulator::set_loop_threads(int n) {
  require(n >= 1 && n <= 4096, "loop threads must be in [1, 4096]");
  loop_threads_ = n;
  window_remaining_ = 0;
  if (n <= 1) {
    pool_.reset();
  } else {
    pool_ = std::make_unique<TaskPool>(static_cast<std::size_t>(n));
  }
}

void Simulator::set_compute_hook(OwnerId owner,
                                 std::function<void(TimePoint)> hook) {
  require(owner != kNoOwner, "kNoOwner cannot have a compute hook");
  if (owner >= hooks_.size()) {
    if (!hook) return;  // clearing a hook that was never set
    hooks_.resize(owner + 1);
  }
  hooks_[owner] = std::move(hook);
}

void Simulator::plan_window() {
  // k-smallest traversal of the binary heap: a candidate min-heap of
  // positions, seeded with the root; popping a position offers its two
  // children. Visits only the peeked prefix's ancestors, never the
  // whole array. Stale (cancelled) entries are skipped but still expand.
  peek_heap_.clear();
  window_owners_.clear();
  std::size_t window = 0;
  const auto later = [this](std::uint32_t a, std::uint32_t b) {
    return Later{}(heap_[a], heap_[b]);
  };
  constexpr std::size_t kWindowCap = 64;
  if (!heap_.empty()) peek_heap_.push_back(0);
  while (!peek_heap_.empty() && window < kWindowCap) {
    std::pop_heap(peek_heap_.begin(), peek_heap_.end(), later);
    const std::uint32_t pos = peek_heap_.back();
    peek_heap_.pop_back();
    for (std::size_t child : {2 * static_cast<std::size_t>(pos) + 1,
                              2 * static_cast<std::size_t>(pos) + 2}) {
      if (child < heap_.size()) {
        peek_heap_.push_back(static_cast<std::uint32_t>(child));
        std::push_heap(peek_heap_.begin(), peek_heap_.end(), later);
      }
    }
    const EventId id = heap_[pos].id;
    if (!live(id)) continue;
    const OwnerId owner = owner_[slot_of(id)];
    if (owner == kNoOwner) break;  // barrier event: window ends here
    ++window;
    if (owner < hooks_.size() && hooks_[owner]) {
      bool seen = false;
      for (const auto& [o, unused] : window_owners_) seen = seen || o == owner;
      if (!seen) window_owners_.emplace_back(owner, heap_[pos].time);
    }
  }
  // Speculate each owner's next decision concurrently — as of the time
  // its first window event will fire — then quiesce so the commits
  // below never run while a worker is reading state.
  if (!window_owners_.empty()) {
    for (const auto& [o, when] : window_owners_) {
      pool_->submit([hook = &hooks_[o], when] { (*hook)(when); });
    }
    pool_->quiesce();
  }
  // Plan at least one commit even when the window is empty (the next
  // event is itself a barrier): fire it and re-plan after.
  window_remaining_ = window > 0 ? window : 1;
}

bool Simulator::live(EventId id) const {
  const std::uint32_t slot = slot_of(id);
  return slot < generation_.size() &&
         generation_[slot] == generation_of(id);
}

void Simulator::retire(EventId id) {
  const std::uint32_t slot = slot_of(id);
  ++generation_[slot];
  free_slots_.push_back(slot);
}

bool Simulator::cancel(EventId id) {
  if (id == kInvalidEventId || !live(id)) return false;
  // Pull the callback out before any destructor runs: destroying a
  // capture may reenter (schedule or cancel), so all bookkeeping must
  // be done first and `doomed` must die last, as a local.
  std::function<void()> doomed;
  doomed.swap(callbacks_[slot_of(id)]);
  retire(id);  // the heap entry goes stale and is dropped when it surfaces
  --live_;
  events_cancelled_.add();
  maybe_compact();
  return true;
}

void Simulator::maybe_compact() {
  if (heap_.size() < kCompactMinEntries) return;
  if (heap_.size() - live_ <= live_) return;  // garbage ratio <= 0.5
  std::size_t keep = 0;
  for (const Entry& entry : heap_) {
    if (live(entry.id)) heap_[keep++] = entry;
  }
  heap_.resize(keep);
  std::make_heap(heap_.begin(), heap_.end(), Later{});
  ++heap_compactions_;
}

bool Simulator::is_pending(EventId id) const {
  return id != kInvalidEventId && live(id);
}

void Simulator::drop_stale() const {
  while (!heap_.empty() && !live(heap_.front().id)) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
  }
}

void Simulator::fire() {
  VSPLICE_PROFILE_SCOPE("sim.fire");
  if (pool_) {
    // Parallel loop: at a window boundary, peek the next window and
    // speculate its owners' decisions before committing anything. The
    // pop below is untouched either way — commit order IS serial order.
    if (window_remaining_ == 0) plan_window();
    --window_remaining_;
  }
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  const Entry entry = heap_.back();
  heap_.pop_back();
  check_invariant(entry.time >= now_, "event queue went backwards in time");
  now_ = entry.time;
  // Move the callback to a local before retiring: fn() may schedule,
  // reallocating callbacks_ (and reusing this slot).
  std::function<void()> fn;
  fn.swap(callbacks_[slot_of(entry.id)]);
  retire(entry.id);
  --live_;
  ++fired_count_;
  events_fired_.add();
  queue_depth_.set(static_cast<double>(live_));
  if (event_limit_ != 0 && fired_count_ > event_limit_) {
    throw InternalError{"simulator event limit exceeded (" +
                        std::to_string(event_limit_) +
                        " events); likely a runaway feedback loop"};
  }
  fn();
}

bool Simulator::step() {
  drop_stale();
  if (heap_.empty()) return false;
  fire();
  return true;
}

void Simulator::run() {
  while (step()) {
  }
}

std::size_t Simulator::run_until(TimePoint t) {
  require(t >= now_, "run_until target is in the past");
  std::size_t processed = 0;
  while (true) {
    drop_stale();
    if (heap_.empty() || heap_.front().time > t) break;
    fire();
    ++processed;
  }
  now_ = t;
  return processed;
}

TimePoint Simulator::next_event_time() const {
  drop_stale();
  if (heap_.empty()) return TimePoint::infinity();
  return heap_.front().time;
}

PeriodicTask::PeriodicTask(Simulator& sim, Duration period,
                           std::function<void()> fn, OwnerId owner)
    : sim_{sim}, period_{period}, fn_{std::move(fn)}, owner_{owner} {
  require(period_ > Duration::zero(), "periodic task period must be > 0");
  require(static_cast<bool>(fn_), "periodic task needs a callback");
}

PeriodicTask::~PeriodicTask() { stop(); }

void PeriodicTask::start() {
  if (running()) return;
  stopped_ = false;
  schedule_next();
}

void PeriodicTask::stop() {
  stopped_ = true;
  if (event_ != kInvalidEventId) {
    sim_.cancel(event_);
    event_ = kInvalidEventId;
  }
}

void PeriodicTask::schedule_next() {
  event_ = sim_.after(
      period_,
      [this] {
        event_ = kInvalidEventId;
        fn_();
        // fn_ may have called stop(); only chain if still meant to run.
        if (!stopped_) schedule_next();
      },
      owner_);
}

}  // namespace vsplice::sim
