#include "sim/simulator.h"

#include <algorithm>

#include "common/error.h"
#include "obs/metrics.h"
#include "obs/profiler.h"

namespace vsplice::sim {

EventId Simulator::at(TimePoint t, std::function<void()> fn) {
  // Format the diagnostic only on failure: this runs once per event.
  if (t < now_) {
    throw InvalidArgument{"cannot schedule an event in the past (" +
                          t.to_string() + " < " + now_.to_string() + ")"};
  }
  require(static_cast<bool>(fn), "cannot schedule a null callback");
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    callbacks_[slot] = std::move(fn);
  } else {
    slot = static_cast<std::uint32_t>(generation_.size());
    generation_.push_back(1);
    callbacks_.push_back(std::move(fn));
  }
  const EventId id = make_id(slot, generation_[slot]);
  {
    VSPLICE_PROFILE_SCOPE("sim.schedule");
    heap_.push_back(Entry{t, next_sequence_++, id});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
  }
  heap_high_water_ = std::max(heap_high_water_, heap_.size());
  ++live_;
  events_scheduled_.add();
  return id;
}

EventId Simulator::after(Duration d, std::function<void()> fn) {
  require(!d.is_negative(), "cannot schedule with a negative delay");
  return at(now_ + d, std::move(fn));
}

bool Simulator::live(EventId id) const {
  const std::uint32_t slot = slot_of(id);
  return slot < generation_.size() &&
         generation_[slot] == generation_of(id);
}

void Simulator::retire(EventId id) {
  const std::uint32_t slot = slot_of(id);
  ++generation_[slot];
  free_slots_.push_back(slot);
}

bool Simulator::cancel(EventId id) {
  if (id == kInvalidEventId || !live(id)) return false;
  // Pull the callback out before any destructor runs: destroying a
  // capture may reenter (schedule or cancel), so all bookkeeping must
  // be done first and `doomed` must die last, as a local.
  std::function<void()> doomed;
  doomed.swap(callbacks_[slot_of(id)]);
  retire(id);  // the heap entry goes stale and is dropped when it surfaces
  --live_;
  events_cancelled_.add();
  return true;
}

bool Simulator::is_pending(EventId id) const {
  return id != kInvalidEventId && live(id);
}

void Simulator::drop_stale() const {
  while (!heap_.empty() && !live(heap_.front().id)) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
  }
}

void Simulator::fire() {
  VSPLICE_PROFILE_SCOPE("sim.fire");
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  const Entry entry = heap_.back();
  heap_.pop_back();
  check_invariant(entry.time >= now_, "event queue went backwards in time");
  now_ = entry.time;
  // Move the callback to a local before retiring: fn() may schedule,
  // reallocating callbacks_ (and reusing this slot).
  std::function<void()> fn;
  fn.swap(callbacks_[slot_of(entry.id)]);
  retire(entry.id);
  --live_;
  ++fired_count_;
  events_fired_.add();
  queue_depth_.set(static_cast<double>(live_));
  if (event_limit_ != 0 && fired_count_ > event_limit_) {
    throw InternalError{"simulator event limit exceeded (" +
                        std::to_string(event_limit_) +
                        " events); likely a runaway feedback loop"};
  }
  fn();
}

bool Simulator::step() {
  drop_stale();
  if (heap_.empty()) return false;
  fire();
  return true;
}

void Simulator::run() {
  while (step()) {
  }
}

std::size_t Simulator::run_until(TimePoint t) {
  require(t >= now_, "run_until target is in the past");
  std::size_t processed = 0;
  while (true) {
    drop_stale();
    if (heap_.empty() || heap_.front().time > t) break;
    fire();
    ++processed;
  }
  now_ = t;
  return processed;
}

TimePoint Simulator::next_event_time() const {
  drop_stale();
  if (heap_.empty()) return TimePoint::infinity();
  return heap_.front().time;
}

PeriodicTask::PeriodicTask(Simulator& sim, Duration period,
                           std::function<void()> fn)
    : sim_{sim}, period_{period}, fn_{std::move(fn)} {
  require(period_ > Duration::zero(), "periodic task period must be > 0");
  require(static_cast<bool>(fn_), "periodic task needs a callback");
}

PeriodicTask::~PeriodicTask() { stop(); }

void PeriodicTask::start() {
  if (running()) return;
  stopped_ = false;
  schedule_next();
}

void PeriodicTask::stop() {
  stopped_ = true;
  if (event_ != kInvalidEventId) {
    sim_.cancel(event_);
    event_ = kInvalidEventId;
  }
}

void PeriodicTask::schedule_next() {
  event_ = sim_.after(period_, [this] {
    event_ = kInvalidEventId;
    fn_();
    // fn_ may have called stop(); only chain if still meant to run.
    if (!stopped_) schedule_next();
  });
}

}  // namespace vsplice::sim
