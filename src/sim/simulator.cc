#include "sim/simulator.h"

#include "common/error.h"
#include "obs/metrics.h"

namespace vsplice::sim {

EventId Simulator::at(TimePoint t, std::function<void()> fn) {
  require(t >= now_, "cannot schedule an event in the past (" +
                         t.to_string() + " < " + now_.to_string() + ")");
  require(static_cast<bool>(fn), "cannot schedule a null callback");
  const EventId id = next_id_++;
  queue_.push(Entry{t, next_sequence_++, id});
  pending_.insert(id);
  callbacks_.emplace(id, std::move(fn));
  obs::count("sim.events_scheduled");
  return id;
}

EventId Simulator::after(Duration d, std::function<void()> fn) {
  require(!d.is_negative(), "cannot schedule with a negative delay");
  return at(now_ + d, std::move(fn));
}

bool Simulator::cancel(EventId id) {
  const auto it = pending_.find(id);
  if (it == pending_.end()) return false;
  pending_.erase(it);
  callbacks_.erase(id);
  cancelled_.insert(id);
  obs::count("sim.events_cancelled");
  return true;
}

bool Simulator::is_pending(EventId id) const {
  return pending_.contains(id);
}

void Simulator::drop_cancelled() const {
  while (!queue_.empty() && cancelled_.contains(queue_.top().id)) {
    cancelled_.erase(queue_.top().id);
    queue_.pop();
  }
}

void Simulator::fire(const Entry& entry) {
  check_invariant(entry.time >= now_, "event queue went backwards in time");
  now_ = entry.time;
  pending_.erase(entry.id);
  auto node = callbacks_.extract(entry.id);
  check_invariant(!node.empty(), "pending event without a callback");
  ++fired_count_;
  obs::count("sim.events_fired");
  obs::set_gauge("sim.queue_depth", static_cast<double>(pending_.size()));
  if (event_limit_ != 0 && fired_count_ > event_limit_) {
    throw InternalError{"simulator event limit exceeded (" +
                        std::to_string(event_limit_) +
                        " events); likely a runaway feedback loop"};
  }
  node.mapped()();
}

bool Simulator::step() {
  drop_cancelled();
  if (queue_.empty()) return false;
  const Entry entry = queue_.top();
  queue_.pop();
  fire(entry);
  return true;
}

void Simulator::run() {
  while (step()) {
  }
}

std::size_t Simulator::run_until(TimePoint t) {
  require(t >= now_, "run_until target is in the past");
  std::size_t processed = 0;
  while (true) {
    drop_cancelled();
    if (queue_.empty() || queue_.top().time > t) break;
    const Entry entry = queue_.top();
    queue_.pop();
    fire(entry);
    ++processed;
  }
  now_ = t;
  return processed;
}

std::size_t Simulator::pending_events() const { return pending_.size(); }

TimePoint Simulator::next_event_time() const {
  drop_cancelled();
  if (queue_.empty()) return TimePoint::infinity();
  return queue_.top().time;
}

PeriodicTask::PeriodicTask(Simulator& sim, Duration period,
                           std::function<void()> fn)
    : sim_{sim}, period_{period}, fn_{std::move(fn)} {
  require(period_ > Duration::zero(), "periodic task period must be > 0");
  require(static_cast<bool>(fn_), "periodic task needs a callback");
}

PeriodicTask::~PeriodicTask() { stop(); }

void PeriodicTask::start() {
  if (running()) return;
  stopped_ = false;
  schedule_next();
}

void PeriodicTask::stop() {
  stopped_ = true;
  if (event_ != kInvalidEventId) {
    sim_.cancel(event_);
    event_ = kInvalidEventId;
  }
}

void PeriodicTask::schedule_next() {
  event_ = sim_.after(period_, [this] {
    event_ = kInvalidEventId;
    fn_();
    // fn_ may have called stop(); only chain if still meant to run.
    if (!stopped_) schedule_next();
  });
}

}  // namespace vsplice::sim
