// A small quiescent worker pool for the deterministic parallel event
// loop (DESIGN.md §14).
//
// The pool is deliberately phase-oriented rather than streaming: the
// simulation's commit thread alternates between (a) submitting a batch
// of independent tasks — speculative per-node decision computes, or the
// per-flow scan blocks of a sharded reallocation — and (b) quiesce(),
// which drains the queue (the caller executes tasks too, so a pool of
// size N really applies N lanes) and blocks until every worker is idle.
// Nothing else in the simulation runs while tasks are in flight, which
// is what makes the parallel loop trivially race-free: workers only ever
// read state that the commit thread is *not* mutating, because the
// commit thread is parked inside quiesce().
//
// All handoff goes through one mutex, so every task the commit thread
// submitted happens-before the worker runs it, and every write a worker
// made happens-before quiesce() returns — the property the TSan CI job
// checks end to end.
//
// A pool of size <= 1 spawns no threads: submit() runs the task inline
// and quiesce() is a no-op, so `loop_threads = 1` is byte-for-byte the
// serial code path.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace vsplice::sim {

class TaskPool {
 public:
  /// `lanes` counts the calling thread: a pool of 4 spawns 3 workers.
  explicit TaskPool(std::size_t lanes);
  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;
  ~TaskPool();

  /// Total execution lanes (workers + the calling thread); >= 1.
  [[nodiscard]] std::size_t lanes() const { return workers_.size() + 1; }

  /// Enqueues a task. Tasks must be independent of each other; they may
  /// start running immediately on a worker. With no workers the task
  /// runs inline before submit returns.
  void submit(std::function<void()> task);

  /// Runs queued tasks on the calling thread until the queue is empty,
  /// then blocks until every worker is idle. On return, all effects of
  /// all submitted tasks are visible to the caller.
  void quiesce();

  /// Splits [0, n) into one contiguous block per lane, runs
  /// body(block, begin, end) for each block across the pool, and
  /// quiesces. The partition depends only on (n, lanes) — never on
  /// timing — so a body whose writes are indexed by position (or by
  /// block, for per-lane reduction partials) is deterministic.
  void parallel_for(
      std::size_t n,
      const std::function<void(std::size_t, std::size_t, std::size_t)>& body);

 private:
  void worker_loop();
  /// Pops and runs one task; returns false when the queue was empty.
  /// `lock` is held on entry and re-held on exit.
  bool run_one(std::unique_lock<std::mutex>& lock);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;  // workers wait: queue non-empty/stop
  std::condition_variable idle_cv_;  // quiesce waits: queue empty + idle
  std::deque<std::function<void()>> queue_;
  std::size_t busy_ = 0;
  bool stop_ = false;
};

}  // namespace vsplice::sim
