#include "sim/coalescer.h"

#include <utility>

namespace vsplice::sim {

CoalescingFlush::CoalescingFlush(Simulator& sim, Duration delay,
                                 std::function<void()> fn, OwnerId owner)
    : sim_{sim}, delay_{delay}, fn_{std::move(fn)}, owner_{owner} {}

bool CoalescingFlush::arm() {
  if (event_ != kInvalidEventId) return false;
  event_ = sim_.after(
      delay_,
      [this] {
        // Clear before firing so the callback can re-arm for the next
        // epoch from inside the flush.
        event_ = kInvalidEventId;
        fn_();
      },
      owner_);
  return true;
}

void CoalescingFlush::cancel() {
  if (event_ == kInvalidEventId) return;
  sim_.cancel(event_);
  event_ = kInvalidEventId;
}

}  // namespace vsplice::sim
