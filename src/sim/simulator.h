// Discrete-event simulation engine.
//
// Single-threaded, deterministic: events at equal timestamps fire in the
// order they were scheduled. Everything in vsplice (network flows, peer
// protocol timers, the playback clock) runs on one Simulator instance.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/units.h"

namespace vsplice::sim {

/// Handle for a scheduled event; stable for the lifetime of the simulator.
using EventId = std::uint64_t;

inline constexpr EventId kInvalidEventId = 0;

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time. Starts at the origin.
  [[nodiscard]] TimePoint now() const { return now_; }

  /// Schedules `fn` at absolute time `t` (must not be in the past).
  EventId at(TimePoint t, std::function<void()> fn);

  /// Schedules `fn` after `d` from now (d must be non-negative).
  EventId after(Duration d, std::function<void()> fn);

  /// Cancels a pending event. Returns false if it already fired, was
  /// already cancelled, or never existed.
  bool cancel(EventId id);

  /// True if `id` is still pending.
  [[nodiscard]] bool is_pending(EventId id) const;

  /// Runs events until the queue is empty.
  void run();

  /// Runs all events with timestamp <= `t`, then advances the clock to
  /// exactly `t`. Returns the number of events processed.
  std::size_t run_until(TimePoint t);

  /// Processes the single next event. Returns false when the queue is
  /// empty.
  bool step();

  /// Number of pending (non-cancelled) events.
  [[nodiscard]] std::size_t pending_events() const;

  /// Timestamp of the next pending event, or TimePoint::infinity().
  [[nodiscard]] TimePoint next_event_time() const;

  /// Safety valve for tests: run() throws InternalError after this many
  /// events (0 disables the limit, the default).
  void set_event_limit(std::uint64_t limit) { event_limit_ = limit; }

 private:
  struct Entry {
    TimePoint time;
    std::uint64_t sequence;  // tie-break: FIFO at equal timestamps
    EventId id;
    // Ordered for a min-heap via std::greater below.
    friend bool operator>(const Entry& a, const Entry& b) {
      if (a.time != b.time) return a.time > b.time;
      return a.sequence > b.sequence;
    }
  };

  void fire(const Entry& entry);
  /// Pops cancelled entries off the heap top.
  void drop_cancelled() const;

  TimePoint now_ = TimePoint::origin();
  std::uint64_t next_sequence_ = 0;
  EventId next_id_ = 1;
  std::uint64_t fired_count_ = 0;
  std::uint64_t event_limit_ = 0;

  mutable std::priority_queue<Entry, std::vector<Entry>,
                              std::greater<Entry>>
      queue_;
  // Lazy deletion: cancelled ids are skipped when they reach the top.
  mutable std::unordered_set<EventId> cancelled_;
  std::unordered_set<EventId> pending_;
  std::unordered_map<EventId, std::function<void()>> callbacks_;
};

/// Repeats a callback at a fixed period until stopped or destroyed.
/// The first firing happens one period after start().
class PeriodicTask {
 public:
  PeriodicTask(Simulator& sim, Duration period, std::function<void()> fn);
  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;
  ~PeriodicTask();

  void start();
  void stop();
  [[nodiscard]] bool running() const { return event_ != kInvalidEventId; }

 private:
  void schedule_next();

  Simulator& sim_;
  Duration period_;
  std::function<void()> fn_;
  EventId event_ = kInvalidEventId;
  bool stopped_ = false;
};

}  // namespace vsplice::sim
