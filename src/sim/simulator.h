// Discrete-event simulation engine.
//
// Deterministic: events at equal timestamps fire in the order they were
// scheduled. Everything in vsplice (network flows, peer protocol timers,
// the playback clock) runs on one Simulator instance. Concurrency across
// *runs* is achieved by giving each run its own Simulator (see
// experiments::ParallelRunner).
//
// Within a run, set_loop_threads(N > 1) enables the deterministic
// parallel loop (DESIGN.md §14): events are still *committed* strictly
// serially in heap order — (time, sequence), which refines (time,
// node-id, per-node sequence) since sequences are assigned at schedule
// time — so every callback, RNG draw, figure and trace is byte-identical
// to the serial loop by construction. The parallelism is speculative:
// before committing a *barrier window* (the maximal run of owner-tagged
// events before the next untagged event — untagged events are the
// global barriers: flow completions and message deliveries that trigger
// hub reallocation), the loop peeks the window's owners out of the heap
// and runs their registered compute hooks concurrently on a TaskPool,
// then quiesces before the first commit. A hook precomputes its node's
// next scheduling decision into a private slot; the node adopts the
// result at commit time only if a validation stamp (RNG state, state
// epoch) proves it equal to what an inline recompute would produce, and
// recomputes inline otherwise. The same pool shards the hub
// reallocation's per-flow scans (net::Network). Workers only ever run
// while the commit thread is parked in TaskPool::quiesce(), so no state
// is read while being written.
//
// Hot-path design: the heap orders trivially-copyable 24-byte entries
// (time, FIFO sequence, id) while the callbacks live in per-slot storage
// — sift operations move PODs instead of std::function objects, which
// is most of a heap operation's cost at message-heavy queue depths.
// Cancellation is generation-tagged: an EventId encodes (slot,
// generation); cancelling or firing bumps the slot's generation, so stale
// heap entries are recognized by a mismatched tag and skipped lazily when
// they surface. Scheduling, cancelling and firing therefore touch only
// flat vectors — no hash-table lookups anywhere in the event loop, and no
// allocations once the heap and slot vectors have reached steady-state
// size.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/units.h"
#include "obs/metrics.h"
#include "sim/task_pool.h"

namespace vsplice::sim {

/// Handle for a scheduled event: (slot << 32) | generation. Slots are
/// recycled; the generation tag makes every issued id unique until a
/// slot's 32-bit generation counter wraps (~4 billion schedules on one
/// slot — unreachable in any realistic run).
using EventId = std::uint64_t;

inline constexpr EventId kInvalidEventId = 0;

/// Owner tag for the parallel loop's barrier windows: the node whose
/// private state an event mutates. kNoOwner marks a global (barrier)
/// event — it ends the current window.
using OwnerId = std::uint32_t;

inline constexpr OwnerId kNoOwner = 0xFFFFFFFFu;

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time. Starts at the origin.
  [[nodiscard]] TimePoint now() const { return now_; }

  /// Schedules `fn` at absolute time `t` (must not be in the past).
  /// `owner` tags the event for the parallel loop's window planner;
  /// untagged events are barriers (see the header comment).
  EventId at(TimePoint t, std::function<void()> fn,
             OwnerId owner = kNoOwner);

  /// Schedules `fn` after `d` from now (d must be non-negative).
  EventId after(Duration d, std::function<void()> fn,
                OwnerId owner = kNoOwner);

  /// Cancels a pending event. Returns false if it already fired, was
  /// already cancelled, or never existed. The callback is destroyed
  /// before cancel() returns (after all queue bookkeeping, so a
  /// capture's destructor may itself schedule or cancel); only the
  /// 24-byte heap entry lingers until it surfaces and is dropped.
  bool cancel(EventId id);

  /// True if `id` is still pending.
  [[nodiscard]] bool is_pending(EventId id) const;

  /// Runs events until the queue is empty.
  void run();

  /// Runs all events with timestamp <= `t`, then advances the clock to
  /// exactly `t`. Returns the number of events processed.
  std::size_t run_until(TimePoint t);

  /// Processes the single next event. Returns false when the queue is
  /// empty.
  bool step();

  /// Number of pending (non-cancelled) events.
  [[nodiscard]] std::size_t pending_events() const { return live_; }

  /// Cumulative events fired over the simulator's lifetime.
  [[nodiscard]] std::uint64_t fired_count() const { return fired_count_; }

  /// Raw heap entries, including lazily-cancelled garbage.
  [[nodiscard]] std::size_t heap_entries() const { return heap_.size(); }

  /// Deepest the heap has ever been (entries, including garbage).
  /// Records the pre-compaction peak: compaction shrinks the live size
  /// but never rewrites history.
  [[nodiscard]] std::size_t heap_high_water() const {
    return heap_high_water_;
  }

  /// Heap rebuilds performed because lazily-cancelled garbage crossed
  /// the compaction threshold (see the event_queue_garbage anomaly
  /// scanner; compaction keeps the steady-state ratio at or below the
  /// scanner's 0.5 alarm line).
  [[nodiscard]] std::uint64_t heap_compactions() const {
    return heap_compactions_;
  }

  /// Fraction of current heap entries that are lazily-cancelled
  /// garbage, [0, 1]; 0 when the heap is empty. A ratio that stays
  /// above 0.5 means lazy deletion is carrying more dead weight than
  /// live events (see the event_queue_garbage anomaly scanner).
  [[nodiscard]] double garbage_ratio() const {
    if (heap_.empty()) return 0.0;
    return static_cast<double>(heap_.size() - live_) /
           static_cast<double>(heap_.size());
  }

  /// Bytes held by the event queue: heap entries plus per-slot
  /// generation/callback/free-list storage (capacity-based; see
  /// obs/resource.h).
  [[nodiscard]] std::uint64_t memory_bytes() const {
    return static_cast<std::uint64_t>(heap_.capacity()) * sizeof(Entry) +
           static_cast<std::uint64_t>(generation_.capacity()) *
               sizeof(std::uint32_t) +
           static_cast<std::uint64_t>(callbacks_.capacity()) *
               sizeof(std::function<void()>) +
           static_cast<std::uint64_t>(owner_.capacity()) *
               sizeof(OwnerId) +
           static_cast<std::uint64_t>(free_slots_.capacity()) *
               sizeof(std::uint32_t);
  }

  /// Timestamp of the next pending event, or TimePoint::infinity().
  [[nodiscard]] TimePoint next_event_time() const;

  /// Safety valve for tests: run() throws InternalError after this many
  /// events (0 disables the limit, the default).
  void set_event_limit(std::uint64_t limit) { event_limit_ = limit; }

  // ----------------------------------------- deterministic parallel loop

  /// Enables the parallel loop with `n` total lanes (workers + the
  /// commit thread). n <= 1 is the exact serial path (no pool, no
  /// planner, nothing speculated); results are byte-identical either
  /// way. Must not be called while events are firing.
  void set_loop_threads(int n);
  [[nodiscard]] int loop_threads() const { return loop_threads_; }

  /// The pool, or nullptr in serial mode. Shared with net::Network for
  /// the sharded reallocation phases.
  [[nodiscard]] TaskPool* task_pool() { return pool_.get(); }

  /// Registers `hook` as `owner`'s speculative compute. The planner runs
  /// it on a worker before committing a window containing one of the
  /// owner's events, passing the simulated time at which the owner's
  /// first window event will fire (the hook speculates *as of* that
  /// time; its validation stamp must include it, since other events may
  /// preempt the window). It must only read simulation state (the
  /// commit thread is quiesced) and write the owner's private slot.
  /// Pass an empty function to clear (required before the owner is
  /// destroyed).
  void set_compute_hook(OwnerId owner, std::function<void(TimePoint)> hook);

 private:
  /// Heap entry: trivially copyable on purpose. The callback lives in
  /// callbacks_[slot_of(id)], so sifting the heap never touches a
  /// std::function.
  struct Entry {
    TimePoint time;
    std::uint64_t sequence;  // tie-break: FIFO at equal timestamps
    EventId id;
  };

  /// Heap comparator: true when `a` fires after `b` (min-heap on
  /// (time, sequence) under std::push_heap/pop_heap).
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.sequence > b.sequence;
    }
  };

  static constexpr EventId make_id(std::uint32_t slot,
                                   std::uint32_t generation) {
    return (static_cast<EventId>(slot) << 32) | generation;
  }
  static constexpr std::uint32_t slot_of(EventId id) {
    return static_cast<std::uint32_t>(id >> 32);
  }
  static constexpr std::uint32_t generation_of(EventId id) {
    return static_cast<std::uint32_t>(id);
  }

  /// True while the id's generation tag matches its slot.
  [[nodiscard]] bool live(EventId id) const;
  /// Bumps the slot's generation and returns it to the free list.
  void retire(EventId id);
  /// Pops stale (cancelled) entries off the heap top.
  void drop_stale() const;
  /// Rebuilds the heap without its stale entries once garbage outweighs
  /// live events (and the heap is big enough to matter). Pop order is
  /// unchanged — it is the total order (time, sequence), independent of
  /// heap layout — and generation tags live in the slot vector, which a
  /// rebuild never touches. Runs only from cancel(), never while an
  /// entry is being popped or the window planner is peeking.
  void maybe_compact();
  /// Moves the top entry out of the heap, retires it, and runs it.
  void fire();
  /// Parallel loop: peeks the next barrier window (up to kWindowCap
  /// owner-tagged events in commit order, stopping at the first
  /// untagged event), runs the owners' compute hooks on the pool, and
  /// quiesces. Sets window_remaining_ to the window length (>= 1).
  void plan_window();

  TimePoint now_ = TimePoint::origin();
  std::uint64_t next_sequence_ = 0;
  std::uint64_t fired_count_ = 0;
  std::uint64_t event_limit_ = 0;
  std::size_t live_ = 0;
  std::size_t heap_high_water_ = 0;
  std::uint64_t heap_compactions_ = 0;
  /// Below this many entries a rebuild saves less than it costs.
  static constexpr std::size_t kCompactMinEntries = 1024;

  // Lazy deletion: cancelled entries stay in the heap (their slot's
  // generation no longer matches) and are dropped when they surface.
  mutable std::vector<Entry> heap_;
  std::vector<std::uint32_t> generation_;  // per slot; starts at 1
  std::vector<std::function<void()>> callbacks_;  // per slot
  std::vector<OwnerId> owner_;                    // per slot
  std::vector<std::uint32_t> free_slots_;

  // Parallel loop (all empty/idle in serial mode; the owner_ vector
  // above is maintained in both modes so memory accounting — and
  // therefore every figure — is identical with the loop on or off).
  int loop_threads_ = 1;
  std::unique_ptr<TaskPool> pool_;
  std::vector<std::function<void(TimePoint)>> hooks_;  // per owner id
  std::size_t window_remaining_ = 0;  // commits left this window
  // plan_window scratch: a min-heap of heap_ positions (k-smallest
  // traversal — visits O(window · log window) entries, never the whole
  // heap) and the distinct hooked owners seen in the window, each with
  // the fire time of its first window event.
  std::vector<std::uint32_t> peek_heap_;
  std::vector<std::pair<OwnerId, TimePoint>> window_owners_;

  // Per-event metrics, resolved once per installed registry instead of
  // by name on every schedule/fire.
  obs::CachedCounter events_scheduled_{"sim.events_scheduled"};
  obs::CachedCounter events_cancelled_{"sim.events_cancelled"};
  obs::CachedCounter events_fired_{"sim.events_fired"};
  obs::CachedGauge queue_depth_{"sim.queue_depth"};
};

/// Repeats a callback at a fixed period until stopped or destroyed.
/// The first firing happens one period after start(). `owner` tags each
/// firing for the parallel loop's window planner (a leecher's download
/// tick is owner-tagged; untagged tasks act as barriers).
class PeriodicTask {
 public:
  PeriodicTask(Simulator& sim, Duration period, std::function<void()> fn,
               OwnerId owner = kNoOwner);
  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;
  ~PeriodicTask();

  void start();
  void stop();
  [[nodiscard]] bool running() const { return event_ != kInvalidEventId; }

 private:
  void schedule_next();

  Simulator& sim_;
  Duration period_;
  std::function<void()> fn_;
  OwnerId owner_ = kNoOwner;
  EventId event_ = kInvalidEventId;
  bool stopped_ = false;
};

}  // namespace vsplice::sim
