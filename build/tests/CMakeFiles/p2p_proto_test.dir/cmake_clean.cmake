file(REMOVE_RECURSE
  "CMakeFiles/p2p_proto_test.dir/test_p2p_proto.cpp.o"
  "CMakeFiles/p2p_proto_test.dir/test_p2p_proto.cpp.o.d"
  "p2p_proto_test"
  "p2p_proto_test.pdb"
  "p2p_proto_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2p_proto_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
