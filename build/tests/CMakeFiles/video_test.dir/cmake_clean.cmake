file(REMOVE_RECURSE
  "CMakeFiles/video_test.dir/test_mp4.cpp.o"
  "CMakeFiles/video_test.dir/test_mp4.cpp.o.d"
  "CMakeFiles/video_test.dir/test_video.cpp.o"
  "CMakeFiles/video_test.dir/test_video.cpp.o.d"
  "video_test"
  "video_test.pdb"
  "video_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/video_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
