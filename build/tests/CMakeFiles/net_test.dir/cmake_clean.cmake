file(REMOVE_RECURSE
  "CMakeFiles/net_test.dir/test_connection.cpp.o"
  "CMakeFiles/net_test.dir/test_connection.cpp.o.d"
  "CMakeFiles/net_test.dir/test_fair_share.cpp.o"
  "CMakeFiles/net_test.dir/test_fair_share.cpp.o.d"
  "CMakeFiles/net_test.dir/test_network.cpp.o"
  "CMakeFiles/net_test.dir/test_network.cpp.o.d"
  "CMakeFiles/net_test.dir/test_tcp_model.cpp.o"
  "CMakeFiles/net_test.dir/test_tcp_model.cpp.o.d"
  "net_test"
  "net_test.pdb"
  "net_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
