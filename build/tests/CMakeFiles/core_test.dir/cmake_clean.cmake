file(REMOVE_RECURSE
  "CMakeFiles/core_test.dir/test_core.cpp.o"
  "CMakeFiles/core_test.dir/test_core.cpp.o.d"
  "CMakeFiles/core_test.dir/test_extraction.cpp.o"
  "CMakeFiles/core_test.dir/test_extraction.cpp.o.d"
  "CMakeFiles/core_test.dir/test_splicer.cpp.o"
  "CMakeFiles/core_test.dir/test_splicer.cpp.o.d"
  "core_test"
  "core_test.pdb"
  "core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
