file(REMOVE_RECURSE
  "CMakeFiles/common_test.dir/test_bytes_io.cpp.o"
  "CMakeFiles/common_test.dir/test_bytes_io.cpp.o.d"
  "CMakeFiles/common_test.dir/test_rng.cpp.o"
  "CMakeFiles/common_test.dir/test_rng.cpp.o.d"
  "CMakeFiles/common_test.dir/test_stats.cpp.o"
  "CMakeFiles/common_test.dir/test_stats.cpp.o.d"
  "CMakeFiles/common_test.dir/test_strings_table.cpp.o"
  "CMakeFiles/common_test.dir/test_strings_table.cpp.o.d"
  "CMakeFiles/common_test.dir/test_units.cpp.o"
  "CMakeFiles/common_test.dir/test_units.cpp.o.d"
  "common_test"
  "common_test.pdb"
  "common_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
