file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_startup.dir/bench_fig4_startup.cpp.o"
  "CMakeFiles/bench_fig4_startup.dir/bench_fig4_startup.cpp.o.d"
  "bench_fig4_startup"
  "bench_fig4_startup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_startup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
