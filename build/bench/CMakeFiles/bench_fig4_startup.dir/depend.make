# Empty dependencies file for bench_fig4_startup.
# This may be replaced when dependencies are built.
