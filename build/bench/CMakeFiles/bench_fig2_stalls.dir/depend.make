# Empty dependencies file for bench_fig2_stalls.
# This may be replaced when dependencies are built.
