# Empty compiler generated dependencies file for bench_variable_bandwidth.
# This may be replaced when dependencies are built.
