
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_variable_bandwidth.cpp" "bench/CMakeFiles/bench_variable_bandwidth.dir/bench_variable_bandwidth.cpp.o" "gcc" "bench/CMakeFiles/bench_variable_bandwidth.dir/bench_variable_bandwidth.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/experiments/CMakeFiles/vsplice_experiments.dir/DependInfo.cmake"
  "/root/repo/build/src/cdn/CMakeFiles/vsplice_cdn.dir/DependInfo.cmake"
  "/root/repo/build/src/p2p/CMakeFiles/vsplice_p2p.dir/DependInfo.cmake"
  "/root/repo/build/src/streaming/CMakeFiles/vsplice_streaming.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/vsplice_core.dir/DependInfo.cmake"
  "/root/repo/build/src/video/CMakeFiles/vsplice_video.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/vsplice_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vsplice_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vsplice_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
