file(REMOVE_RECURSE
  "CMakeFiles/bench_variable_bandwidth.dir/bench_variable_bandwidth.cpp.o"
  "CMakeFiles/bench_variable_bandwidth.dir/bench_variable_bandwidth.cpp.o.d"
  "bench_variable_bandwidth"
  "bench_variable_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_variable_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
