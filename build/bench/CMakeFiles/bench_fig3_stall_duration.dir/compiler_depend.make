# Empty compiler generated dependencies file for bench_fig3_stall_duration.
# This may be replaced when dependencies are built.
