# Empty dependencies file for bench_splicing_overhead.
# This may be replaced when dependencies are built.
