file(REMOVE_RECURSE
  "CMakeFiles/bench_splicing_overhead.dir/bench_splicing_overhead.cpp.o"
  "CMakeFiles/bench_splicing_overhead.dir/bench_splicing_overhead.cpp.o.d"
  "bench_splicing_overhead"
  "bench_splicing_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_splicing_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
