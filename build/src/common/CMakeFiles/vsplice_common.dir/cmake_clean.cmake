file(REMOVE_RECURSE
  "CMakeFiles/vsplice_common.dir/bytes_io.cc.o"
  "CMakeFiles/vsplice_common.dir/bytes_io.cc.o.d"
  "CMakeFiles/vsplice_common.dir/histogram.cc.o"
  "CMakeFiles/vsplice_common.dir/histogram.cc.o.d"
  "CMakeFiles/vsplice_common.dir/log.cc.o"
  "CMakeFiles/vsplice_common.dir/log.cc.o.d"
  "CMakeFiles/vsplice_common.dir/rng.cc.o"
  "CMakeFiles/vsplice_common.dir/rng.cc.o.d"
  "CMakeFiles/vsplice_common.dir/stats.cc.o"
  "CMakeFiles/vsplice_common.dir/stats.cc.o.d"
  "CMakeFiles/vsplice_common.dir/strings.cc.o"
  "CMakeFiles/vsplice_common.dir/strings.cc.o.d"
  "CMakeFiles/vsplice_common.dir/table.cc.o"
  "CMakeFiles/vsplice_common.dir/table.cc.o.d"
  "CMakeFiles/vsplice_common.dir/units.cc.o"
  "CMakeFiles/vsplice_common.dir/units.cc.o.d"
  "libvsplice_common.a"
  "libvsplice_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vsplice_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
