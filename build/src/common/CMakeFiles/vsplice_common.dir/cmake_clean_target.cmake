file(REMOVE_RECURSE
  "libvsplice_common.a"
)
