# Empty compiler generated dependencies file for vsplice_common.
# This may be replaced when dependencies are built.
