
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/bandwidth_schedule.cc" "src/net/CMakeFiles/vsplice_net.dir/bandwidth_schedule.cc.o" "gcc" "src/net/CMakeFiles/vsplice_net.dir/bandwidth_schedule.cc.o.d"
  "/root/repo/src/net/connection.cc" "src/net/CMakeFiles/vsplice_net.dir/connection.cc.o" "gcc" "src/net/CMakeFiles/vsplice_net.dir/connection.cc.o.d"
  "/root/repo/src/net/cross_traffic.cc" "src/net/CMakeFiles/vsplice_net.dir/cross_traffic.cc.o" "gcc" "src/net/CMakeFiles/vsplice_net.dir/cross_traffic.cc.o.d"
  "/root/repo/src/net/fair_share.cc" "src/net/CMakeFiles/vsplice_net.dir/fair_share.cc.o" "gcc" "src/net/CMakeFiles/vsplice_net.dir/fair_share.cc.o.d"
  "/root/repo/src/net/network.cc" "src/net/CMakeFiles/vsplice_net.dir/network.cc.o" "gcc" "src/net/CMakeFiles/vsplice_net.dir/network.cc.o.d"
  "/root/repo/src/net/tcp_model.cc" "src/net/CMakeFiles/vsplice_net.dir/tcp_model.cc.o" "gcc" "src/net/CMakeFiles/vsplice_net.dir/tcp_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vsplice_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vsplice_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
