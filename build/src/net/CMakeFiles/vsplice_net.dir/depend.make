# Empty dependencies file for vsplice_net.
# This may be replaced when dependencies are built.
