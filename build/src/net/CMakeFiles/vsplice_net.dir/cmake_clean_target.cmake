file(REMOVE_RECURSE
  "libvsplice_net.a"
)
