file(REMOVE_RECURSE
  "CMakeFiles/vsplice_net.dir/bandwidth_schedule.cc.o"
  "CMakeFiles/vsplice_net.dir/bandwidth_schedule.cc.o.d"
  "CMakeFiles/vsplice_net.dir/connection.cc.o"
  "CMakeFiles/vsplice_net.dir/connection.cc.o.d"
  "CMakeFiles/vsplice_net.dir/cross_traffic.cc.o"
  "CMakeFiles/vsplice_net.dir/cross_traffic.cc.o.d"
  "CMakeFiles/vsplice_net.dir/fair_share.cc.o"
  "CMakeFiles/vsplice_net.dir/fair_share.cc.o.d"
  "CMakeFiles/vsplice_net.dir/network.cc.o"
  "CMakeFiles/vsplice_net.dir/network.cc.o.d"
  "CMakeFiles/vsplice_net.dir/tcp_model.cc.o"
  "CMakeFiles/vsplice_net.dir/tcp_model.cc.o.d"
  "libvsplice_net.a"
  "libvsplice_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vsplice_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
