# Empty compiler generated dependencies file for vsplice_core.
# This may be replaced when dependencies are built.
