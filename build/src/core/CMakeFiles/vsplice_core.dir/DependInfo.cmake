
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bandwidth_estimator.cc" "src/core/CMakeFiles/vsplice_core.dir/bandwidth_estimator.cc.o" "gcc" "src/core/CMakeFiles/vsplice_core.dir/bandwidth_estimator.cc.o.d"
  "/root/repo/src/core/extraction.cc" "src/core/CMakeFiles/vsplice_core.dir/extraction.cc.o" "gcc" "src/core/CMakeFiles/vsplice_core.dir/extraction.cc.o.d"
  "/root/repo/src/core/playlist.cc" "src/core/CMakeFiles/vsplice_core.dir/playlist.cc.o" "gcc" "src/core/CMakeFiles/vsplice_core.dir/playlist.cc.o.d"
  "/root/repo/src/core/pool_policy.cc" "src/core/CMakeFiles/vsplice_core.dir/pool_policy.cc.o" "gcc" "src/core/CMakeFiles/vsplice_core.dir/pool_policy.cc.o.d"
  "/root/repo/src/core/segment.cc" "src/core/CMakeFiles/vsplice_core.dir/segment.cc.o" "gcc" "src/core/CMakeFiles/vsplice_core.dir/segment.cc.o.d"
  "/root/repo/src/core/segment_sizing.cc" "src/core/CMakeFiles/vsplice_core.dir/segment_sizing.cc.o" "gcc" "src/core/CMakeFiles/vsplice_core.dir/segment_sizing.cc.o.d"
  "/root/repo/src/core/splicer.cc" "src/core/CMakeFiles/vsplice_core.dir/splicer.cc.o" "gcc" "src/core/CMakeFiles/vsplice_core.dir/splicer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vsplice_common.dir/DependInfo.cmake"
  "/root/repo/build/src/video/CMakeFiles/vsplice_video.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
