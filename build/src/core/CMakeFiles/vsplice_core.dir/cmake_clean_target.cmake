file(REMOVE_RECURSE
  "libvsplice_core.a"
)
