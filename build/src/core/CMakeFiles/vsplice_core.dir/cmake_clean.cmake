file(REMOVE_RECURSE
  "CMakeFiles/vsplice_core.dir/bandwidth_estimator.cc.o"
  "CMakeFiles/vsplice_core.dir/bandwidth_estimator.cc.o.d"
  "CMakeFiles/vsplice_core.dir/extraction.cc.o"
  "CMakeFiles/vsplice_core.dir/extraction.cc.o.d"
  "CMakeFiles/vsplice_core.dir/playlist.cc.o"
  "CMakeFiles/vsplice_core.dir/playlist.cc.o.d"
  "CMakeFiles/vsplice_core.dir/pool_policy.cc.o"
  "CMakeFiles/vsplice_core.dir/pool_policy.cc.o.d"
  "CMakeFiles/vsplice_core.dir/segment.cc.o"
  "CMakeFiles/vsplice_core.dir/segment.cc.o.d"
  "CMakeFiles/vsplice_core.dir/segment_sizing.cc.o"
  "CMakeFiles/vsplice_core.dir/segment_sizing.cc.o.d"
  "CMakeFiles/vsplice_core.dir/splicer.cc.o"
  "CMakeFiles/vsplice_core.dir/splicer.cc.o.d"
  "libvsplice_core.a"
  "libvsplice_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vsplice_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
