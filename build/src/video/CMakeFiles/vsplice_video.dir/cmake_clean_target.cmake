file(REMOVE_RECURSE
  "libvsplice_video.a"
)
