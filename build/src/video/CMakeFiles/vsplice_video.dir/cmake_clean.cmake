file(REMOVE_RECURSE
  "CMakeFiles/vsplice_video.dir/encoder.cc.o"
  "CMakeFiles/vsplice_video.dir/encoder.cc.o.d"
  "CMakeFiles/vsplice_video.dir/frame.cc.o"
  "CMakeFiles/vsplice_video.dir/frame.cc.o.d"
  "CMakeFiles/vsplice_video.dir/mp4.cc.o"
  "CMakeFiles/vsplice_video.dir/mp4.cc.o.d"
  "CMakeFiles/vsplice_video.dir/scene.cc.o"
  "CMakeFiles/vsplice_video.dir/scene.cc.o.d"
  "CMakeFiles/vsplice_video.dir/video_stream.cc.o"
  "CMakeFiles/vsplice_video.dir/video_stream.cc.o.d"
  "libvsplice_video.a"
  "libvsplice_video.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vsplice_video.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
