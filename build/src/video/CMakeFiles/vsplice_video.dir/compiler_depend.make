# Empty compiler generated dependencies file for vsplice_video.
# This may be replaced when dependencies are built.
