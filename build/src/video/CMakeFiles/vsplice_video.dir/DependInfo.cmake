
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/video/encoder.cc" "src/video/CMakeFiles/vsplice_video.dir/encoder.cc.o" "gcc" "src/video/CMakeFiles/vsplice_video.dir/encoder.cc.o.d"
  "/root/repo/src/video/frame.cc" "src/video/CMakeFiles/vsplice_video.dir/frame.cc.o" "gcc" "src/video/CMakeFiles/vsplice_video.dir/frame.cc.o.d"
  "/root/repo/src/video/mp4.cc" "src/video/CMakeFiles/vsplice_video.dir/mp4.cc.o" "gcc" "src/video/CMakeFiles/vsplice_video.dir/mp4.cc.o.d"
  "/root/repo/src/video/scene.cc" "src/video/CMakeFiles/vsplice_video.dir/scene.cc.o" "gcc" "src/video/CMakeFiles/vsplice_video.dir/scene.cc.o.d"
  "/root/repo/src/video/video_stream.cc" "src/video/CMakeFiles/vsplice_video.dir/video_stream.cc.o" "gcc" "src/video/CMakeFiles/vsplice_video.dir/video_stream.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vsplice_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
