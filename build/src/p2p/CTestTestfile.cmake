# CMake generated Testfile for 
# Source directory: /root/repo/src/p2p
# Build directory: /root/repo/build/src/p2p
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
