file(REMOVE_RECURSE
  "CMakeFiles/vsplice_p2p.dir/bitfield.cc.o"
  "CMakeFiles/vsplice_p2p.dir/bitfield.cc.o.d"
  "CMakeFiles/vsplice_p2p.dir/churn.cc.o"
  "CMakeFiles/vsplice_p2p.dir/churn.cc.o.d"
  "CMakeFiles/vsplice_p2p.dir/leecher.cc.o"
  "CMakeFiles/vsplice_p2p.dir/leecher.cc.o.d"
  "CMakeFiles/vsplice_p2p.dir/peer.cc.o"
  "CMakeFiles/vsplice_p2p.dir/peer.cc.o.d"
  "CMakeFiles/vsplice_p2p.dir/swarm.cc.o"
  "CMakeFiles/vsplice_p2p.dir/swarm.cc.o.d"
  "CMakeFiles/vsplice_p2p.dir/tracker.cc.o"
  "CMakeFiles/vsplice_p2p.dir/tracker.cc.o.d"
  "CMakeFiles/vsplice_p2p.dir/wire.cc.o"
  "CMakeFiles/vsplice_p2p.dir/wire.cc.o.d"
  "libvsplice_p2p.a"
  "libvsplice_p2p.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vsplice_p2p.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
