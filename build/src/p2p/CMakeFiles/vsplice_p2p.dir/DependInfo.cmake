
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/p2p/bitfield.cc" "src/p2p/CMakeFiles/vsplice_p2p.dir/bitfield.cc.o" "gcc" "src/p2p/CMakeFiles/vsplice_p2p.dir/bitfield.cc.o.d"
  "/root/repo/src/p2p/churn.cc" "src/p2p/CMakeFiles/vsplice_p2p.dir/churn.cc.o" "gcc" "src/p2p/CMakeFiles/vsplice_p2p.dir/churn.cc.o.d"
  "/root/repo/src/p2p/leecher.cc" "src/p2p/CMakeFiles/vsplice_p2p.dir/leecher.cc.o" "gcc" "src/p2p/CMakeFiles/vsplice_p2p.dir/leecher.cc.o.d"
  "/root/repo/src/p2p/peer.cc" "src/p2p/CMakeFiles/vsplice_p2p.dir/peer.cc.o" "gcc" "src/p2p/CMakeFiles/vsplice_p2p.dir/peer.cc.o.d"
  "/root/repo/src/p2p/swarm.cc" "src/p2p/CMakeFiles/vsplice_p2p.dir/swarm.cc.o" "gcc" "src/p2p/CMakeFiles/vsplice_p2p.dir/swarm.cc.o.d"
  "/root/repo/src/p2p/tracker.cc" "src/p2p/CMakeFiles/vsplice_p2p.dir/tracker.cc.o" "gcc" "src/p2p/CMakeFiles/vsplice_p2p.dir/tracker.cc.o.d"
  "/root/repo/src/p2p/wire.cc" "src/p2p/CMakeFiles/vsplice_p2p.dir/wire.cc.o" "gcc" "src/p2p/CMakeFiles/vsplice_p2p.dir/wire.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vsplice_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vsplice_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/vsplice_net.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/vsplice_core.dir/DependInfo.cmake"
  "/root/repo/build/src/streaming/CMakeFiles/vsplice_streaming.dir/DependInfo.cmake"
  "/root/repo/build/src/video/CMakeFiles/vsplice_video.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
