file(REMOVE_RECURSE
  "libvsplice_p2p.a"
)
