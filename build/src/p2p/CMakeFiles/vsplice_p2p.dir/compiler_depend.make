# Empty compiler generated dependencies file for vsplice_p2p.
# This may be replaced when dependencies are built.
