file(REMOVE_RECURSE
  "CMakeFiles/vsplice_experiments.dir/paper_setup.cc.o"
  "CMakeFiles/vsplice_experiments.dir/paper_setup.cc.o.d"
  "CMakeFiles/vsplice_experiments.dir/sweep.cc.o"
  "CMakeFiles/vsplice_experiments.dir/sweep.cc.o.d"
  "libvsplice_experiments.a"
  "libvsplice_experiments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vsplice_experiments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
