file(REMOVE_RECURSE
  "libvsplice_experiments.a"
)
