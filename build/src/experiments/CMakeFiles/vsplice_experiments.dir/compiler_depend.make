# Empty compiler generated dependencies file for vsplice_experiments.
# This may be replaced when dependencies are built.
