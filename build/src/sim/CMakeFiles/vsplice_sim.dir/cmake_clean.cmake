file(REMOVE_RECURSE
  "CMakeFiles/vsplice_sim.dir/simulator.cc.o"
  "CMakeFiles/vsplice_sim.dir/simulator.cc.o.d"
  "libvsplice_sim.a"
  "libvsplice_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vsplice_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
