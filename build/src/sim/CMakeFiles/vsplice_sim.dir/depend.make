# Empty dependencies file for vsplice_sim.
# This may be replaced when dependencies are built.
