file(REMOVE_RECURSE
  "libvsplice_sim.a"
)
