file(REMOVE_RECURSE
  "CMakeFiles/vsplice_cdn.dir/cdn.cc.o"
  "CMakeFiles/vsplice_cdn.dir/cdn.cc.o.d"
  "libvsplice_cdn.a"
  "libvsplice_cdn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vsplice_cdn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
