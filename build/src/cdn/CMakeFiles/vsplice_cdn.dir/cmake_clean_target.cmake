file(REMOVE_RECURSE
  "libvsplice_cdn.a"
)
