# Empty compiler generated dependencies file for vsplice_cdn.
# This may be replaced when dependencies are built.
