
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/streaming/metrics.cc" "src/streaming/CMakeFiles/vsplice_streaming.dir/metrics.cc.o" "gcc" "src/streaming/CMakeFiles/vsplice_streaming.dir/metrics.cc.o.d"
  "/root/repo/src/streaming/playback_buffer.cc" "src/streaming/CMakeFiles/vsplice_streaming.dir/playback_buffer.cc.o" "gcc" "src/streaming/CMakeFiles/vsplice_streaming.dir/playback_buffer.cc.o.d"
  "/root/repo/src/streaming/player.cc" "src/streaming/CMakeFiles/vsplice_streaming.dir/player.cc.o" "gcc" "src/streaming/CMakeFiles/vsplice_streaming.dir/player.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vsplice_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vsplice_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/vsplice_core.dir/DependInfo.cmake"
  "/root/repo/build/src/video/CMakeFiles/vsplice_video.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
