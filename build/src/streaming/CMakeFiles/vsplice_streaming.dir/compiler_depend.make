# Empty compiler generated dependencies file for vsplice_streaming.
# This may be replaced when dependencies are built.
