file(REMOVE_RECURSE
  "CMakeFiles/vsplice_streaming.dir/metrics.cc.o"
  "CMakeFiles/vsplice_streaming.dir/metrics.cc.o.d"
  "CMakeFiles/vsplice_streaming.dir/playback_buffer.cc.o"
  "CMakeFiles/vsplice_streaming.dir/playback_buffer.cc.o.d"
  "CMakeFiles/vsplice_streaming.dir/player.cc.o"
  "CMakeFiles/vsplice_streaming.dir/player.cc.o.d"
  "libvsplice_streaming.a"
  "libvsplice_streaming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vsplice_streaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
