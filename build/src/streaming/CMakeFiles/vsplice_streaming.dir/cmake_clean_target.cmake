file(REMOVE_RECURSE
  "libvsplice_streaming.a"
)
