file(REMOVE_RECURSE
  "CMakeFiles/splicing_explorer.dir/splicing_explorer.cpp.o"
  "CMakeFiles/splicing_explorer.dir/splicing_explorer.cpp.o.d"
  "splicing_explorer"
  "splicing_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splicing_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
