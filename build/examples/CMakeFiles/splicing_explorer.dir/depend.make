# Empty dependencies file for splicing_explorer.
# This may be replaced when dependencies are built.
