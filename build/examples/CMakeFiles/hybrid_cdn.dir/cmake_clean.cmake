file(REMOVE_RECURSE
  "CMakeFiles/hybrid_cdn.dir/hybrid_cdn.cpp.o"
  "CMakeFiles/hybrid_cdn.dir/hybrid_cdn.cpp.o.d"
  "hybrid_cdn"
  "hybrid_cdn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybrid_cdn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
