# Empty compiler generated dependencies file for hybrid_cdn.
# This may be replaced when dependencies are built.
