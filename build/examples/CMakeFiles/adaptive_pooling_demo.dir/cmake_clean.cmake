file(REMOVE_RECURSE
  "CMakeFiles/adaptive_pooling_demo.dir/adaptive_pooling_demo.cpp.o"
  "CMakeFiles/adaptive_pooling_demo.dir/adaptive_pooling_demo.cpp.o.d"
  "adaptive_pooling_demo"
  "adaptive_pooling_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_pooling_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
