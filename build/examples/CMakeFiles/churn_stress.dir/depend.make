# Empty dependencies file for churn_stress.
# This may be replaced when dependencies are built.
