file(REMOVE_RECURSE
  "CMakeFiles/churn_stress.dir/churn_stress.cpp.o"
  "CMakeFiles/churn_stress.dir/churn_stress.cpp.o.d"
  "churn_stress"
  "churn_stress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/churn_stress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
